"""Tests for the regridding cycle: flag -> cluster -> rebuild -> transfer."""

import numpy as np
import pytest

from repro.mpi import ZERO_COST, mpirun
from repro.samr import (
    Box,
    DataObject,
    Hierarchy,
    exchange_ghosts,
    flag_gradient,
    regrid,
)


def build(max_levels=2, nranks=1, n=16):
    h = Hierarchy((n, n), extent=(1.0, 1.0), ratio=2,
                  max_levels=max_levels, nghost=2, nranks=nranks)
    h.build_base_level()
    return h


def gaussian_bump(h, d, x0=0.5, y0=0.5, width=0.05):
    for p in d.owned_patches():
        lvl = h.level(p.level)
        x, y = lvl.cell_centers(p, h.origin, ghost=True)
        r2 = (x[:, None] - x0) ** 2 + (y[None, :] - y0) ** 2
        d.array(p)[0] = np.exp(-r2 / width**2)


def flagger(d, comm=None):
    def fn(level):
        exchange_ghosts(d, level, comm=comm)
        return flag_gradient(d, level, threshold=0.2, relative=True,
                             comm=comm)

    return fn


def test_regrid_creates_fine_level_over_feature():
    h = build()
    d = DataObject("f", h, nvar=1)
    gaussian_bump(h, d)
    regrid(h, [d], flagger(d), max_size=16)
    assert h.nlevels == 2
    fine = h.level(1)
    assert fine.patches
    # the fine level must cover the bump center
    center = (16, 16)  # cell (0.5, 0.5) at level 1 (32x32 index space)
    assert any(p.box.contains_point(center) for p in fine.patches)


def test_regrid_seeds_fine_data_from_coarse():
    h = build()
    d = DataObject("f", h, nvar=1)
    gaussian_bump(h, d)
    regrid(h, [d], flagger(d), max_size=16)
    for p in d.owned_patches(1):
        vals = d.interior(p)
        assert np.isfinite(vals).all()
        assert vals.max() > 0.3  # data actually prolonged, not zeros


def test_regrid_flat_field_drops_fine_levels():
    h = build()
    d = DataObject("f", h, nvar=1)
    gaussian_bump(h, d)
    regrid(h, [d], flagger(d), max_size=16)
    assert h.nlevels == 2
    d.fill(1.0)  # feature gone
    regrid(h, [d], flagger(d), max_size=16)
    assert h.nlevels == 1
    # fine-level storage must have been freed
    assert all(p.level == 0 for p in d.owned_patches())


def test_regrid_moving_feature_follows():
    h = build()
    d = DataObject("f", h, nvar=1)
    gaussian_bump(h, d, x0=0.25, y0=0.25)
    regrid(h, [d], flagger(d), max_size=16)
    old_boxes = [p.box for p in h.level(1).patches]
    gaussian_bump(h, d, x0=0.75, y0=0.75)
    regrid(h, [d], flagger(d), max_size=16)
    new_boxes = [p.box for p in h.level(1).patches]
    # bump center x=0.75 -> level-1 cell 24 (32x32 level-1 index space)
    assert any(b.contains_point((24, 24)) for b in new_boxes)
    assert old_boxes != new_boxes


def test_regrid_preserves_same_resolution_data():
    """Old fine data overlapping new fine patches must survive verbatim
    (not be replaced by prolonged coarse data)."""
    h = build()
    d = DataObject("f", h, nvar=1)
    gaussian_bump(h, d)
    regrid(h, [d], flagger(d), max_size=16)
    # stamp a recognizable fine-only value in the bump core
    marker = 123.456
    for p in d.owned_patches(1):
        if p.box.contains_point((16, 16)):
            sl = d.interior(p)
            sl[:, sl.shape[1] // 2, sl.shape[2] // 2] = marker
    regrid(h, [d], flagger(d), max_size=16)
    found = any(
        np.any(d.interior(p) == marker) for p in d.owned_patches(1))
    assert found


def test_regrid_three_levels_nested():
    h = build(max_levels=3, n=32)
    d = DataObject("f", h, nvar=1)
    gaussian_bump(h, d, width=0.02)
    regrid(h, [d], flagger(d), max_size=16)
    if h.nlevels == 3:
        # proper nesting: every L2 patch under refined L1 boxes
        l1_boxes = [p.box.refine(2) for p in h.level(1).patches]
        from repro.samr.boxlist import subtract_all

        for p in h.level(2).patches:
            assert not subtract_all([p.box], l1_boxes)


def test_regrid_parallel_consistent_metadata():
    """All ranks must agree on the new hierarchy structure."""

    def main(comm):
        h = build(nranks=comm.size)
        d = DataObject("f", h, nvar=1, rank=comm.rank)
        gaussian_bump(h, d)
        regrid(h, [d], flagger(d, comm), comm=comm, max_size=16)
        return [(p.id, p.box.lo, p.box.hi, p.owner)
                for p in h.all_patches()]

    res = mpirun(2, main, machine=ZERO_COST)
    assert res[0] == res[1]
    assert len(res[0]) > 2  # fine level exists


def dense_level1(h, chunks):
    """Assemble {box: interior-array} chunks into one dense level-1 field
    (NaN where uncovered)."""
    domain = h.domain_at(1)
    dense = np.full(domain.shape, np.nan)
    for box, arr in chunks:
        dense[box.slices(origin=domain.lo)] = arr[0]
    return dense


def test_regrid_parallel_data_matches_serial():
    """Patch ids/splits differ with the rank count, but the assembled
    level-1 field must be identical wherever both cover."""

    def main(comm):
        h = build(nranks=comm.size)
        d = DataObject("f", h, nvar=1, rank=comm.rank)
        gaussian_bump(h, d)
        regrid(h, [d], flagger(d, comm), comm=comm, max_size=16)
        return [(p.box, d.interior(p).copy()) for p in d.owned_patches(1)]

    par_chunks = []
    for chunk in mpirun(2, main, machine=ZERO_COST):
        par_chunks.extend(chunk)

    h = build(nranks=1)
    d = DataObject("f", h, nvar=1)
    gaussian_bump(h, d)
    regrid(h, [d], flagger(d), max_size=16)
    ser_chunks = [(p.box, d.interior(p).copy()) for p in d.owned_patches(1)]

    par = dense_level1(h, par_chunks)
    ser = dense_level1(h, ser_chunks)
    both = ~np.isnan(par) & ~np.isnan(ser)
    assert both.sum() > 100  # substantial common refined region
    np.testing.assert_allclose(par[both], ser[both], rtol=1e-12)
