"""Parallel SAMR stress tests: 4-rank exchanges, balancer-distributed
hierarchies, multi-level parallel consistency."""

import numpy as np
import pytest

from repro.mpi import ZERO_COST, mpirun
from repro.samr import (
    Box,
    DataObject,
    Hierarchy,
    balance_sfc,
    exchange_ghosts,
    flag_gradient,
    regrid,
)


def quad_hierarchy(nranks, nghost=2, max_levels=1):
    """16x16 domain split into four 8x8 quadrant patches."""
    h = Hierarchy((16, 16), extent=(1.0, 1.0), max_levels=max_levels,
                  nghost=nghost, nranks=nranks)
    h.build_base_level(decomposition=[
        Box((0, 0), (7, 7)), Box((0, 8), (7, 15)),
        Box((8, 0), (15, 7)), Box((8, 8), (15, 15)),
    ])
    return h


def fill_global_index(h, d):
    for p in d.owned_patches():
        i = np.arange(p.box.lo[0], p.box.hi[0] + 1)
        j = np.arange(p.box.lo[1], p.box.hi[1] + 1)
        d.interior(p)[0] = 1000.0 * i[:, None] + j[None, :]


def test_four_rank_quadrant_exchange_matches_serial():
    def main(comm):
        h = quad_hierarchy(comm.size)
        d = DataObject("f", h, nvar=1, rank=comm.rank)
        d.fill(np.nan)
        fill_global_index(h, d)
        exchange_ghosts(d, 0, comm=comm)
        return {p.id: d.array(p).copy() for p in d.owned_patches(0)}

    par = {}
    for chunk in mpirun(4, main, machine=ZERO_COST):
        par.update(chunk)
    h = quad_hierarchy(1)
    d = DataObject("f", h, nvar=1)
    d.fill(np.nan)
    fill_global_index(h, d)
    exchange_ghosts(d, 0)
    assert set(par) == {p.id for p in h.level(0).patches}
    for p in h.level(0).patches:
        np.testing.assert_allclose(par[p.id], d.array(p))


def test_corner_ghosts_filled_across_ranks():
    """Diagonal-neighbour data reaches corner ghost cells (needed by the
    2-D diffusion stencil after the two BC sweeps)."""

    def main(comm):
        h = quad_hierarchy(comm.size)
        d = DataObject("f", h, nvar=1, rank=comm.rank)
        d.fill(np.nan)
        fill_global_index(h, d)
        exchange_ghosts(d, 0, comm=comm)
        ok = True
        for p in d.owned_patches(0):
            ok = ok and bool(np.isfinite(d.array(p)).all())
        return ok

    assert all(mpirun(4, main, machine=ZERO_COST))


def test_sfc_balanced_hierarchy_distributes_patches():
    def main(comm):
        h = Hierarchy((16, 16), extent=(1.0, 1.0), max_levels=2,
                      nghost=2, nranks=comm.size, balancer=balance_sfc)
        h.build_base_level(decomposition=[
            Box((0, 0), (7, 7)), Box((0, 8), (7, 15)),
            Box((8, 0), (15, 7)), Box((8, 8), (15, 15)),
        ])
        owners = sorted({p.owner for p in h.level(0).patches})
        return owners

    res = mpirun(2, main, machine=ZERO_COST)
    assert res[0] == [0, 1]  # both ranks own part of the mesh
    assert res[0] == res[1]  # replicated metadata agrees


def test_two_level_parallel_ghost_and_restrict_roundtrip():
    """Fine-level data restricted to coarse, then coarse-fine ghosts
    refilled — all across 2 ranks — must equal the serial result."""
    from repro.samr.ghost import restrict_level

    def main(comm):
        h = quad_hierarchy(comm.size if comm else 1, max_levels=2)
        h.set_level_boxes(1, [Box((8, 8), (23, 23))])
        d = DataObject("f", h, nvar=1, rank=comm.rank if comm else 0)
        for p in d.owned_patches():
            lvl = h.level(p.level)
            x, y = lvl.cell_centers(p, h.origin, ghost=True)
            d.array(p)[0] = np.sin(4 * x[:, None]) * np.cos(3 * y[None, :])
        restrict_level(d, 1, comm=comm)
        exchange_ghosts(d, 0, comm=comm)
        exchange_ghosts(d, 1, comm=comm)
        out = {}
        for p in d.owned_patches():
            out[p.id] = d.array(p).copy()
        return out

    par = {}
    for chunk in mpirun(2, main, machine=ZERO_COST):
        par.update(chunk)

    class _Serial:
        rank = 0
        size = 1

    h = quad_hierarchy(1, max_levels=2)
    h.set_level_boxes(1, [Box((8, 8), (23, 23))])
    d = DataObject("f", h, nvar=1)
    for p in d.owned_patches():
        lvl = h.level(p.level)
        x, y = lvl.cell_centers(p, h.origin, ghost=True)
        d.array(p)[0] = np.sin(4 * x[:, None]) * np.cos(3 * y[None, :])
    from repro.samr.ghost import restrict_level as rl

    rl(d, 1)
    exchange_ghosts(d, 0)
    exchange_ghosts(d, 1)
    for p in h.all_patches():
        np.testing.assert_allclose(par[p.id], d.array(p), rtol=1e-12)


def test_parallel_regrid_three_ranks():
    def main(comm):
        h = Hierarchy((24, 24), extent=(1.0, 1.0), max_levels=2,
                      nghost=2, nranks=comm.size)
        h.build_base_level()
        d = DataObject("f", h, nvar=1, rank=comm.rank)
        for p in d.owned_patches():
            lvl = h.level(p.level)
            x, y = lvl.cell_centers(p, h.origin, ghost=True)
            r2 = (x[:, None] - 0.5) ** 2 + (y[None, :] - 0.5) ** 2
            d.array(p)[0] = np.exp(-r2 / 0.01)

        def flag_fn(level):
            exchange_ghosts(d, level, comm=comm)
            return flag_gradient(d, level, 0.2, comm=comm)

        regrid(h, [d], flag_fn, comm=comm, max_size=16)
        return (h.nlevels,
                tuple((p.id, p.owner) for p in h.level(1).patches))

    res = mpirun(3, main, machine=ZERO_COST)
    assert all(r[0] == 2 for r in res)
    assert res[0][1] == res[1][1] == res[2][1]  # identical metadata
