"""Tests for domain decomposition / load balancing strategies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MeshError
from repro.samr import Box, balance_greedy, balance_sfc
from repro.samr.loadbalance import load_imbalance


def grid_boxes(n, size=8):
    """n x n grid of size x size boxes."""
    return [
        Box((i * size, j * size), ((i + 1) * size - 1, (j + 1) * size - 1))
        for i in range(n)
        for j in range(n)
    ]


def test_greedy_all_ranks_used():
    boxes = grid_boxes(4)
    owners = balance_greedy(boxes, 4)
    assert set(owners) == {0, 1, 2, 3}
    assert load_imbalance(boxes, owners, 4) == pytest.approx(1.0)


def test_greedy_single_rank():
    boxes = grid_boxes(2)
    assert balance_greedy(boxes, 1) == [0, 0, 0, 0]


def test_greedy_weights_override_sizes():
    boxes = [Box((0, 0), (0, 0))] * 4
    owners = balance_greedy(boxes, 2, weights=[100.0, 1.0, 1.0, 98.0])
    # the two heavy boxes must land on different ranks
    assert owners[0] != owners[3]


def test_greedy_imbalance_bounded():
    boxes = grid_boxes(5)  # 25 equal boxes on 4 ranks
    owners = balance_greedy(boxes, 4)
    assert load_imbalance(boxes, owners, 4) < 1.2


def test_sfc_contiguity_keeps_neighbors_together():
    boxes = grid_boxes(4)
    owners = balance_sfc(boxes, 2)
    assert set(owners) == {0, 1}
    # SFC keeps each rank's share spatially compact: measure the bounding
    # box area per rank vs its cell count (compactness ratio)
    for rank in range(2):
        mine = [b for b, o in zip(boxes, owners) if o == rank]
        bound = mine[0]
        for b in mine[1:]:
            bound = bound.bounding(b)
        assert sum(b.size for b in mine) >= 0.45 * bound.size


def test_sfc_balances_cells():
    boxes = grid_boxes(4)
    owners = balance_sfc(boxes, 4)
    assert load_imbalance(boxes, owners, 4) < 1.5


def test_sfc_empty_input():
    assert balance_sfc([], 4) == []


def test_validation():
    with pytest.raises(MeshError):
        balance_greedy([Box((0, 0), (1, 1))], 0)
    with pytest.raises(MeshError):
        balance_sfc([Box((0, 0), (1, 1))], 0)
    with pytest.raises(MeshError):
        balance_greedy([Box((0, 0), (1, 1))], 2, weights=[1.0, 2.0])
    with pytest.raises(MeshError):
        balance_sfc([Box((0, 0), (1, 1))], 2, weights=[1.0, 2.0])


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 30),
                  st.integers(1, 6), st.integers(1, 6)),
        min_size=1, max_size=30),
    st.integers(1, 6),
)
def test_every_box_gets_a_valid_owner(specs, nranks):
    boxes = [Box((i, j), (i + w - 1, j + h - 1)) for i, j, w, h in specs]
    for strategy in (balance_greedy, balance_sfc):
        owners = strategy(boxes, nranks)
        assert len(owners) == len(boxes)
        assert all(0 <= o < nranks for o in owners)


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 6))
def test_greedy_beats_worst_case(nranks):
    """LPT guarantees max load <= (4/3 - 1/(3m)) * optimal; check a loose
    version of that bound on equal boxes."""
    boxes = grid_boxes(6)  # 36 equal boxes
    owners = balance_greedy(boxes, nranks)
    assert load_imbalance(boxes, owners, nranks) <= 4 / 3 + 1e-9
