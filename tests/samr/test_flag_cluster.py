"""Tests for gradient flagging and Berger-Rigoutsos clustering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MeshError
from repro.samr import (
    Box,
    DataObject,
    Hierarchy,
    buffer_flags,
    cluster_flags,
    flag_gradient,
)
from repro.samr.flagging import assemble_level_flags, undivided_gradient


# ----------------------------------------------------------- gradients
def test_undivided_gradient_constant_field_is_zero():
    g = undivided_gradient(np.full((6, 6), 3.0))
    assert g.shape == (4, 4)
    assert np.all(g == 0.0)


def test_undivided_gradient_linear_field():
    x = np.arange(6, dtype=float)
    f = np.broadcast_to(2.0 * x[:, None], (6, 6)).copy()
    g = undivided_gradient(f)
    np.testing.assert_allclose(g, 2.0)


def test_undivided_gradient_picks_max_axis():
    x = np.arange(6, dtype=float)
    f = 1.0 * x[:, None] + 5.0 * x[None, :]
    g = undivided_gradient(f)
    np.testing.assert_allclose(g, 5.0)


def test_undivided_gradient_too_small_raises():
    with pytest.raises(MeshError):
        undivided_gradient(np.zeros((2, 5)))


# ----------------------------------------------------------- flagging
def make_field_hierarchy():
    h = Hierarchy((16, 16), extent=(1.0, 1.0), max_levels=2, nghost=2)
    h.build_base_level()
    d = DataObject("f", h, nvar=1)
    return h, d


def test_flag_gradient_marks_step():
    h, d = make_field_hierarchy()
    p = h.level(0).patches[0]
    arr = d.var(p, 0)
    arr[:, :] = 0.0
    arr[:, 10:] = 1.0  # step at interior column
    flags = flag_gradient(d, 0, threshold=0.5, relative=True)
    f = flags[p.id]
    assert f.shape == (16, 16)
    assert f.any()
    cols = np.nonzero(f.any(axis=0))[0]
    assert set(cols) <= {6, 7, 8, 9}  # near the step (ghost offset 2)


def test_flag_gradient_constant_field_flags_nothing():
    h, d = make_field_hierarchy()
    d.fill(1.0)
    flags = flag_gradient(d, 0, threshold=0.1)
    assert not any(f.any() for f in flags.values())


def test_flag_gradient_absolute_threshold():
    h, d = make_field_hierarchy()
    p = h.level(0).patches[0]
    x = np.arange(20, dtype=float)
    d.var(p, 0)[:] = 0.1 * x[None, :]  # gentle slope, gradient 0.1
    assert not flag_gradient(d, 0, 0.5, relative=False)[p.id].any()
    assert flag_gradient(d, 0, 0.05, relative=False)[p.id].all()


def test_flag_gradient_bad_threshold():
    h, d = make_field_hierarchy()
    with pytest.raises(MeshError):
        flag_gradient(d, 0, threshold=0.0)


def test_buffer_flags_dilates():
    f = np.zeros((9, 9), dtype=bool)
    f[4, 4] = True
    b1 = buffer_flags(f, 1)
    assert b1.sum() == 9
    b2 = buffer_flags(f, 2)
    assert b2.sum() == 25
    assert buffer_flags(f, 0).sum() == 1
    with pytest.raises(MeshError):
        buffer_flags(f, -1)


def test_assemble_level_flags_dense():
    h, d = make_field_hierarchy()
    p = h.level(0).patches[0]
    pf = np.zeros(p.box.shape, dtype=bool)
    pf[3, 5] = True
    dense, origin = assemble_level_flags(h, 0, {p.id: pf})
    assert origin == (0, 0)
    assert dense[3, 5] and dense.sum() == 1


# ----------------------------------------------------------- clustering
def test_cluster_empty_returns_nothing():
    assert cluster_flags(np.zeros((8, 8), dtype=bool)) == []


def test_cluster_single_blob_tight_box():
    f = np.zeros((16, 16), dtype=bool)
    f[4:8, 5:11] = True
    boxes = cluster_flags(f, min_efficiency=0.9)
    assert boxes == [Box((4, 5), (7, 10))]


def test_cluster_separated_blobs_split_at_hole():
    f = np.zeros((32, 8), dtype=bool)
    f[2:6, 2:6] = True
    f[24:28, 2:6] = True
    boxes = cluster_flags(f, min_efficiency=0.8, min_size=2)
    assert len(boxes) == 2
    total = sum(b.size for b in boxes)
    assert total < 0.3 * 32 * 8  # far better than one bounding box


def test_cluster_origin_offset():
    f = np.zeros((8, 8), dtype=bool)
    f[0, 0] = True
    boxes = cluster_flags(f, origin=(10, 20), min_size=1)
    assert boxes[0].contains_point((10, 20))


def test_cluster_respects_max_size():
    f = np.ones((40, 40), dtype=bool)
    boxes = cluster_flags(f, max_size=16)
    assert all(max(b.shape) <= 24 for b in boxes)  # bisection granularity
    assert sum(b.size for b in boxes) == 1600


def test_cluster_validation():
    f = np.zeros((4, 4), dtype=bool)
    with pytest.raises(MeshError):
        cluster_flags(f, min_efficiency=0.0)
    with pytest.raises(MeshError):
        cluster_flags(f, min_size=0)
    with pytest.raises(MeshError):
        cluster_flags(f, min_size=8, max_size=4)


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 23), st.integers(0, 23)),
    min_size=1, max_size=40))
def test_cluster_covers_all_flags(points):
    """Invariant: every flagged cell is covered by some box, and boxes are
    reasonably efficient."""
    f = np.zeros((24, 24), dtype=bool)
    for i, j in points:
        f[i, j] = True
    boxes = cluster_flags(f, min_efficiency=0.5, min_size=2)
    for i, j in points:
        assert any(b.contains_point((i, j)) for b in boxes)
    # boxes never wildly exceed the flag count
    assert sum(b.size for b in boxes) <= max(16, 30 * f.sum())
