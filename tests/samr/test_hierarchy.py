"""Tests for Patch / Level / Hierarchy construction and geometry."""

import numpy as np
import pytest

from repro.errors import MeshError
from repro.samr import Box, Hierarchy, Level, Patch


# ----------------------------------------------------------------- Patch
def test_patch_geometry():
    p = Patch(0, Box((4, 4), (7, 9)), level=0, nghost=2)
    assert p.ghost_box == Box((2, 2), (9, 11))
    assert p.array_shape == (8, 10)
    arr = np.zeros(p.array_shape)
    arr[p.interior_slices()] = 1
    assert arr.sum() == p.box.size
    assert arr[0, 0] == 0 and arr[2, 2] == 1


def test_patch_slices_for_region():
    p = Patch(0, Box((4, 4), (7, 7)), level=0, nghost=1)
    sl = p.slices_for(Box((3, 4), (3, 7)))  # one ghost row below
    arr = np.zeros(p.array_shape)
    arr[sl] = 1
    assert arr[0, 1:5].all() and arr.sum() == 4


def test_patch_region_outside_ghosts_raises():
    p = Patch(0, Box((4, 4), (7, 7)), level=0, nghost=1)
    with pytest.raises(MeshError):
        p.slices_for(Box((0, 0), (1, 1)))


def test_patch_validation():
    with pytest.raises(MeshError):
        Patch(0, Box((2, 2), (1, 1)), level=0)
    with pytest.raises(MeshError):
        Patch(0, Box((0, 0), (1, 1)), level=0, nghost=-1)


# ----------------------------------------------------------------- Level
def test_level_rejects_overlap_and_escape():
    lvl = Level(0, Box((0, 0), (9, 9)), (1.0, 1.0))
    lvl.add(Patch(0, Box((0, 0), (4, 9)), 0))
    with pytest.raises(MeshError):
        lvl.add(Patch(1, Box((4, 0), (9, 9)), 0))  # overlaps column 4
    with pytest.raises(MeshError):
        lvl.add(Patch(2, Box((5, 0), (10, 9)), 0))  # escapes domain
    with pytest.raises(MeshError):
        lvl.add(Patch(3, Box((5, 0), (9, 9)), 1))  # wrong level number


def test_level_coverage_queries():
    lvl = Level(0, Box((0, 0), (9, 9)), (1.0, 1.0))
    lvl.add(Patch(0, Box((0, 0), (4, 9)), 0))
    assert lvl.covers(Box((0, 0), (4, 9)))
    assert not lvl.covers(Box((0, 0), (9, 9)))
    assert lvl.covered_fraction(Box((0, 0), (9, 9))) == pytest.approx(0.5)
    assert lvl.ncells == 50


def test_level_owned_and_lookup():
    lvl = Level(0, Box((0, 0), (9, 9)), (1.0, 1.0))
    lvl.add(Patch(7, Box((0, 0), (4, 9)), 0, owner=1))
    assert lvl.patch_by_id(7).owner == 1
    assert [p.id for p in lvl.owned(1)] == [7]
    assert lvl.owned(0) == []
    with pytest.raises(MeshError):
        lvl.patch_by_id(99)


# ------------------------------------------------------------- Hierarchy
def make_h(nranks=1, max_levels=3, shape=(16, 16)):
    h = Hierarchy(shape, origin=(0.0, 0.0), extent=(1.0, 1.0),
                  ratio=2, max_levels=max_levels, nghost=2, nranks=nranks)
    h.build_base_level()
    return h


def test_base_level_tiles_domain():
    h = make_h(nranks=4)
    lvl = h.level(0)
    assert len(lvl.patches) == 4
    assert lvl.ncells == 256
    owners = {p.owner for p in lvl.patches}
    assert owners == {0, 1, 2, 3}


def test_base_level_twice_raises():
    h = make_h()
    with pytest.raises(MeshError):
        h.build_base_level()


def test_dx_and_domain_at():
    h = make_h()
    assert h.dx(0) == (1 / 16, 1 / 16)
    assert h.dx(1) == (1 / 32, 1 / 32)
    assert h.domain_at(1) == Box((0, 0), (31, 31))


def test_cell_centers():
    h = make_h()
    p = h.level(0).patches[0]
    x, y = h.level(0).cell_centers(p, h.origin)
    assert x[0] == pytest.approx(0.5 / 16)
    assert len(x) == p.box.shape[0]
    xg, _ = h.level(0).cell_centers(p, h.origin, ghost=True)
    assert len(xg) == p.box.shape[0] + 2 * p.nghost


def test_set_level_boxes_nests_and_assigns_parents():
    h = make_h(max_levels=2)
    fine = h.set_level_boxes(1, [Box((4, 4), (19, 19))])
    assert h.nlevels == 2
    assert fine.ncells == 16 * 16
    for p in fine.patches:
        assert p.parent != -1
        assert h.domain_at(1).contains_box(p.box)


def test_set_level_boxes_clips_to_domain():
    h = make_h(max_levels=2)
    fine = h.set_level_boxes(1, [Box((-10, -10), (5, 5))])
    assert all(h.domain_at(1).contains_box(p.box) for p in fine.patches)


def test_set_level_respects_max_levels():
    h = make_h(max_levels=1)
    with pytest.raises(MeshError):
        h.set_level_boxes(1, [Box((0, 0), (3, 3))])


def test_set_level_requires_coarser_level():
    h = make_h(max_levels=3)
    with pytest.raises(MeshError):
        h.set_level_boxes(2, [Box((0, 0), (3, 3))])


def test_proper_nesting_under_partial_coarse_coverage():
    h = make_h(max_levels=3)
    h.set_level_boxes(1, [Box((0, 0), (15, 15))])  # quarter of the domain
    lvl2 = h.set_level_boxes(2, [Box((0, 0), (63, 63))])  # wants everything
    # must be clipped to the refinement of level 1's patches
    covered = Box((0, 0), (31, 31))
    for p in lvl2.patches:
        assert covered.contains_box(p.box)


def test_drop_levels_above():
    h = make_h(max_levels=3)
    h.set_level_boxes(1, [Box((0, 0), (15, 15))])
    h.set_level_boxes(2, [Box((0, 0), (15, 15))])
    h.drop_levels_above(0)
    assert h.nlevels == 1


def test_patch_ids_unique_across_levels():
    h = make_h(nranks=2, max_levels=2)
    h.set_level_boxes(1, [Box((0, 0), (15, 15)), Box((16, 16), (31, 31))])
    ids = [p.id for p in h.all_patches()]
    assert len(ids) == len(set(ids))
    assert h.patch_by_id(ids[-1]).id == ids[-1]


def test_total_cells():
    h = make_h(max_levels=2)
    base = h.total_cells()
    h.set_level_boxes(1, [Box((0, 0), (15, 15))])
    assert h.total_cells() == base + 256


def test_bad_construction_args():
    with pytest.raises(MeshError):
        Hierarchy((16, 16), ratio=1)
    with pytest.raises(MeshError):
        Hierarchy((16, 16), max_levels=0)
    with pytest.raises(MeshError):
        Hierarchy((16, 16), origin=(0.0,))
