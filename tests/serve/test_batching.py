"""The batching planner: template recognition and group keys."""

from repro.serve.batching import DEFAULT_SETTINGS, plan_for


class TestRecognition:
    def test_canonical_script_is_batchable(self, script):
        plan = plan_for(script)
        assert plan is not None
        assert plan.settings["mechanism"] == "h2-lite"
        assert plan.settings["t_end"] == 1e-5
        assert plan.condition == {"T0": 1000.0}

    def test_overrides_feed_the_condition(self, script):
        plan = plan_for(script, {"Initializer.T0": 1100,
                                 "Initializer.phi": 0.9,
                                 "ThermoChemistry.rate_scale": 1.05})
        assert plan.condition == {"T0": 1100.0, "phi": 0.9,
                                  "rate_scale": 1.05}

    def test_renamed_instances_still_match(self, script):
        # matching is by class, so instance names are free
        renamed = script \
            .replace("connect Driver ic Initializer ic",
                     "connect Driver ic the_ic ic") \
            .replace("connect Initializer chem",
                     "connect the_ic chem") \
            .replace("instantiate Initializer Initializer",
                     "instantiate Initializer the_ic") \
            .replace("parameter Initializer T0",
                     "parameter the_ic T0")
        plan = plan_for(renamed)
        assert plan is not None
        assert plan.condition == {"T0": 1000.0}

    def test_defaults_match_component_defaults(self, script):
        stripped = "\n".join(
            ln for ln in script.splitlines()
            if not ln.startswith("parameter"))
        plan = plan_for(stripped)
        assert plan.settings == DEFAULT_SETTINGS
        assert plan.condition == {}


class TestRejection:
    def test_unknown_parameter_bails_to_sequential(self, script):
        assert plan_for(script,
                        {"Driver.checkpoint_path": "/tmp/ck"}) is None
        assert plan_for(script, {"Driver.resume": 1}) is None

    def test_missing_connection_bails(self, script):
        cut = "\n".join(ln for ln in script.splitlines()
                        if ln != "connect Driver stats Statistics stats")
        assert plan_for(cut) is None

    def test_extra_component_bails(self, script):
        extra = script.replace(
            "go Driver",
            "instantiate StatisticsComponent Stats2\ngo Driver")
        assert plan_for(extra) is None

    def test_second_go_bails(self, script):
        assert plan_for(script + "go Driver\n") is None

    def test_syntax_error_bails(self):
        assert plan_for("instantiate\n") is None

    def test_non_numeric_condition_bails(self, script):
        assert plan_for(script, {"Initializer.T0": "hot"}) is None


class TestGroupKeys:
    def test_same_settings_share_a_group(self, script):
        a = plan_for(script, {"Initializer.T0": 1000.0})
        b = plan_for(script, {"Initializer.T0": 1100.0,
                              "Initializer.phi": 0.8})
        assert a.group_key == b.group_key

    def test_different_settings_split_groups(self, script):
        a = plan_for(script)
        b = plan_for(script, {"CvodeComponent.rtol": 1e-10})
        c = plan_for(script, {"Driver.n_output": 10})
        assert len({a.group_key, b.group_key, c.group_key}) == 3
