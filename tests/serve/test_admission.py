"""Static admission control: the RA41x gate in front of the scheduler.

An invalid submission must fail *instantly* — findings on the record, a
per-tenant ``serve.rejected`` tick, and no worker involvement — while
admitted jobs behave exactly as before (warnings ride along in the
record metadata).
"""

import warnings

from repro.cca.framework import Framework
from repro.components import ALL_COMPONENTS
from repro.serve import jobs as J
from repro.serve.service import SimulationService

from .conftest import IGNITION_RC


def find_codes(record):
    return sorted(f["code"] for f in record["findings"])


def test_out_of_range_override_rejected_instantly(service):
    job_id = service.submit(IGNITION_RC,
                            params={"Initializer.T0": 99999.0})
    record = service.status(job_id)
    assert record["state"] == J.FAILED
    assert record["rejected"] is True
    assert record["started"] == record["finished"]  # never ran
    assert "RA412" in find_codes(record)
    assert record["error"].startswith("admission:")
    # rejection happened at submit: the queue never saw the job
    assert service.scheduler.queue_depth() == 0


def test_string_override_on_float_parameter_rejected(service):
    # regression: apply_overrides used to accept any string for a
    # numeric parameter and fail (or misbehave) only inside the run
    job_id = service.submit(IGNITION_RC,
                            params={"Initializer.T0": "hot"})
    record = service.status(job_id)
    assert record["state"] == J.FAILED and record["rejected"] is True
    assert find_codes(record) == ["RA414"]


def test_unknown_parameter_rejected_with_findings(service):
    job_id = service.submit(IGNITION_RC,
                            params={"Initializer.bogus_knob": 1.0})
    record = service.status(job_id)
    assert record["state"] == J.FAILED
    assert find_codes(record) == ["RA411"]


def test_bad_script_rejected_at_submit(service):
    job_id = service.submit("instantiate OnlyOneArg\n")
    record = service.status(job_id)
    assert record["state"] == J.FAILED and record["rejected"] is True
    assert "RA001" in find_codes(record)


def test_rejected_jobs_tick_the_tenant_metric(service, registry):
    service.submit(IGNITION_RC, params={"Initializer.T0": -5.0},
                   tenant="alice")
    service.submit(IGNITION_RC, params={"Initializer.T0": 1000.0},
                   tenant="alice")
    stats = service.stats()
    assert stats["tenants"]["alice"]["rejected"] == 1
    assert stats["tenants"]["alice"]["submitted"] == 2
    records = [m for m in registry.snapshot()
               if m["name"] == "serve.rejected"
               and m["labels"].get("tenant") == "alice"]
    assert len(records) == 1 and records[0]["value"] == 1


def test_numeric_string_override_coerced_for_cache_identity(service):
    j_str = service.submit(IGNITION_RC,
                           params={"Initializer.T0": "1100"})
    j_num = service.submit(IGNITION_RC,
                           params={"Initializer.T0": 1100.0})
    spec = service.store.get_spec(j_str)
    assert spec.params["Initializer.T0"] == 1100.0
    assert isinstance(spec.params["Initializer.T0"], float)
    # identical canonical params => identical cache address
    assert (service.store.get_record(j_str).cache_key
            == service.store.get_record(j_num).cache_key != "")


def test_sweep_rejects_only_the_bad_points(service):
    job_ids = service.sweep(IGNITION_RC,
                            {"Initializer.T0": [1000.0, 99999.0, 1100.0]},
                            tenant="bob")
    states = [service.status(j)["state"] for j in job_ids]
    assert states.count(J.FAILED) == 1
    rejected = [service.status(j) for j in job_ids
                if service.status(j)["rejected"]]
    assert len(rejected) == 1
    assert "RA412" in find_codes(rejected[0])
    service.drain()
    good = [j for j in job_ids if not service.status(j)["rejected"]]
    assert all(service.status(j)["state"] == J.DONE for j in good)


def test_admitted_job_runs_and_stays_finding_free(service):
    job_id = service.submit(IGNITION_RC,
                            params={"Initializer.T0": 1050.0})
    service.drain()
    record = service.status(job_id)
    assert record["state"] == J.DONE
    assert record["rejected"] is False
    assert record["findings"] == []


def test_admission_can_be_disabled(tmp_path, registry):
    with SimulationService(str(tmp_path / "open"), registry=registry,
                           autostart=False, admission=False) as svc:
        job_id = svc.submit(IGNITION_RC,
                            params={"Initializer.T0": 99999.0})
        record = svc.status(job_id)
        assert record["state"] == J.QUEUED
        assert record["rejected"] is False


def test_rejection_needs_no_workers(tmp_path, registry):
    # autostart=False: nothing is running, rejection still lands
    with SimulationService(str(tmp_path / "cold"), registry=registry,
                           autostart=False) as svc:
        job_id = svc.submit(IGNITION_RC,
                            params={"Driver.t_end": -1.0})
        assert svc.status(job_id)["state"] == J.FAILED
        assert "RA412" in find_codes(svc.status(job_id))


# -- Framework.set_parameter warning (runtime analog of RA411) ------------
def build_ignition_framework():
    fw = Framework()
    fw.registry.register_many(ALL_COMPONENTS)
    from repro.apps.ignition0d import Ignition0DDriver

    fw.registry.register(Ignition0DDriver)
    from repro.cca.script import run_script

    # wiring only: strip the go directive
    run_script(fw, "\n".join(
        ln for ln in IGNITION_RC.splitlines()
        if not ln.startswith("go ")))
    return fw


def test_set_parameter_warns_on_typoed_key():
    fw = build_ignition_framework()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        fw.set_parameter("Initializer", "TO", 1000.0)
    assert len(caught) == 1
    assert "'TO'" in str(caught[0].message)
    assert "Initializer" in str(caught[0].message)


def test_set_parameter_accepts_declared_and_extern_keys():
    fw = build_ignition_framework()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        fw.set_parameter("Initializer", "T0", 1000.0)
        # extern: consumed by the resilience hook, not the driver source
        fw.set_parameter("Driver", "checkpoint_path", "/tmp/x")
        fw.set_parameter("Driver", "resume", True)
    assert caught == []


def test_set_parameter_silent_for_unmanifested_classes():
    from repro.cca.component import Component

    class AdHoc(Component):
        def set_services(self, services):
            self.services = services

    fw = Framework()
    fw.registry.register(AdHoc)
    fw.instantiate("AdHoc", "x")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        fw.set_parameter("x", "anything", 1)
    assert caught == []
