"""Job model, override rewriting, and the filesystem job store."""

import json

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve import jobs as J
from repro.serve.jobs import (
    JobSpec,
    JobStore,
    apply_overrides,
    canonical_params,
    jsonable,
)


class TestApplyOverrides:
    def test_rewrites_existing_parameter_line(self, script):
        out = apply_overrides(script, {"Initializer.T0": 1234.5})
        assert "parameter Initializer T0 1234.5" in out
        assert "parameter Initializer T0 1000.0" not in out
        # only the one line changed
        assert out.count("parameter Initializer T0") == 1

    def test_injects_missing_parameter_before_go(self, script):
        out = apply_overrides(script, {"Initializer.phi": 0.8})
        lines = out.splitlines()
        i_param = lines.index("parameter Initializer phi 0.8")
        i_go = lines.index("go Driver")
        assert i_param < i_go

    def test_post_go_parameter_line_is_not_rewritten(self, script):
        # a `parameter` line after the first `go` is inert, so the
        # override must be injected before the go, not silently spent
        # rewriting the dead line
        post_go = script + "parameter Initializer T0 999.0\n"
        out = apply_overrides(post_go, {"Initializer.T0": 1234.5})
        lines = out.splitlines()
        i_go = lines.index("go Driver")
        i_eff = lines.index("parameter Initializer T0 1234.5")
        assert i_eff < i_go
        # the inert post-go line is left untouched
        assert lines.index("parameter Initializer T0 999.0") > i_go

    def test_float_values_round_trip_bitwise(self, script):
        from repro.cca.script import _parse_value, parse_script
        value = 0.1 + 0.2  # not exactly representable in short decimal
        out = apply_overrides(script, {"Initializer.T0": value})
        for d in parse_script(out):
            if d.verb == "parameter" and d.args[:2] == ("Initializer",
                                                        "T0"):
                assert _parse_value(list(d.args[2:])) == value
                return
        pytest.fail("override line not found")

    def test_no_params_returns_text_unchanged(self, script):
        assert apply_overrides(script, {}) is script

    def test_rejects_undotted_key(self, script):
        with pytest.raises(ServeError, match="must be"):
            apply_overrides(script, {"T0": 1.0})


class TestCanonicalParams:
    def test_sorted_and_normalized(self):
        out = canonical_params({"B.y": "2.5", "A.x": "3"})
        assert list(out) == ["A.x", "B.y"]
        assert out["A.x"] == 3 and out["B.y"] == 2.5

    def test_cli_strings_equal_python_numbers(self):
        assert canonical_params({"I.T0": "1100"}) == \
            canonical_params({"I.T0": 1100})


def test_jsonable_arrays_and_tuples_become_lists():
    doc = jsonable({"Y": np.array([1.0, 2.0]),
                    "hist": [(0.0, np.float64(3.5))],
                    "n": np.int64(7)})
    assert doc == {"Y": [1.0, 2.0], "hist": [[0.0, 3.5]], "n": 7}
    json.dumps(doc)  # round-trippable


class TestJobStore:
    def test_new_job_allocates_monotonic_ids(self, tmp_path, script):
        store = JobStore(str(tmp_path))
        a = store.new_job(JobSpec(script=script))
        b = store.new_job(JobSpec(script=script, tenant="t2"))
        assert [a.job_id, b.job_id] == ["j-000001", "j-000002"]
        assert store.job_ids() == ["j-000001", "j-000002"]
        assert store.get_record(b.job_id).tenant == "t2"
        assert store.get_spec(a.job_id).script == script

    def test_transition_guards_state(self, tmp_path, script):
        store = JobStore(str(tmp_path))
        rec = store.new_job(JobSpec(script=script))
        assert store.transition(rec.job_id, (J.QUEUED,),
                                state=J.RUNNING) is not None
        # queued -> cancelled no longer allowed once running
        assert store.transition(rec.job_id, (J.QUEUED,),
                                state=J.CANCELLED) is None
        assert store.get_record(rec.job_id).state == J.RUNNING

    def test_transition_rejects_unknown_field(self, tmp_path, script):
        store = JobStore(str(tmp_path))
        rec = store.new_job(JobSpec(script=script))
        with pytest.raises(ServeError, match="unknown record field"):
            store.transition(rec.job_id, (J.QUEUED,), bogus=1)

    def test_result_round_trip(self, tmp_path, script):
        store = JobStore(str(tmp_path))
        rec = store.new_job(JobSpec(script=script))
        store.write_result(rec.job_id, {"schema": 1, "result": {"x": 1.5}})
        assert store.read_result(rec.job_id)["result"] == {"x": 1.5}

    def test_unknown_job_raises(self, tmp_path):
        store = JobStore(str(tmp_path))
        with pytest.raises(ServeError, match="no job"):
            store.get_record("j-999999")
        with pytest.raises(ServeError, match="no result"):
            store.read_result("j-999999")

    def test_spec_round_trips_all_fields(self, tmp_path, script):
        store = JobStore(str(tmp_path))
        spec = JobSpec(script=script, params={"Initializer.T0": 1050.0},
                       tenant="alice", priority=3, nprocs=2, retries=1,
                       backoff=0.5, fault="kill_rank=0", use_cache=False)
        rec = store.new_job(spec)
        assert store.get_spec(rec.job_id) == spec
