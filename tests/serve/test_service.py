"""End-to-end service behavior — including the PR's demo scenario:
a 12-job two-tenant sweep answered by coalesced solves bitwise-identical
to sequential framework runs, a resubmission answered entirely from the
content cache, a fault-injected job that retries from checkpoint and
completes, and per-tenant schema-1 metrics."""

import pytest

from repro.errors import ServeError
from repro.serve import jobs as J
from repro.serve.service import SimulationService

T0_GRID = [1000.0, 1040.0, 1080.0, 1120.0]
PHI_GRID = [0.8, 1.0, 1.2]


def _sweep(svc, script, tenant):
    return svc.sweep(script, {"Initializer.T0": T0_GRID,
                              "Initializer.phi": PHI_GRID},
                     tenant=tenant)


def test_twelve_job_sweep_demo(service, script):
    svc = service
    # --- phase 1: the sweep runs batched --------------------------------
    job_ids = _sweep(svc, script, "alice")
    assert len(job_ids) == 12
    assert svc.drain(timeout=300)
    payloads = {}
    for job_id in job_ids:
        status = svc.status(job_id)
        assert status["state"] == J.DONE
        assert status["batched"] is True
        assert status["batch_size"] >= 2
        payloads[job_id] = svc.result(job_id)
    # --- phase 2: batched results == sequential, bitwise ----------------
    # re-run two corner conditions alone (cache bypassed), which takes
    # the full framework path through the supervised runner
    for params in ({"Initializer.T0": T0_GRID[0],
                    "Initializer.phi": PHI_GRID[0]},
                   {"Initializer.T0": T0_GRID[-1],
                    "Initializer.phi": PHI_GRID[-1]}):
        seq_id = svc.submit(script, params=params, use_cache=False)
        assert svc.drain(timeout=300)
        assert svc.status(seq_id)["batched"] is False
        seq = svc.result(seq_id)["result"]
        twin_index = (T0_GRID.index(params["Initializer.T0"])
                      * len(PHI_GRID)
                      + PHI_GRID.index(params["Initializer.phi"]))
        batched = payloads[job_ids[twin_index]]["result"]
        for key in ("T_final", "P_final", "rho", "Y_H2O_final", "nfe"):
            assert batched[key] == seq[key], key
        assert batched["Y_final"] == seq["Y_final"]
        assert batched["history_T"] == seq["history_T"]
        assert batched["history_P"] == seq["history_P"]
    # --- phase 3: resubmission is 100% cache hits -----------------------
    again = _sweep(svc, script, "bob")
    assert svc.drain(timeout=60)
    hits = [svc.status(j)["cache_hit"] for j in again]
    assert hits == [True] * 12
    assert [svc.result(j)["result"]["T_final"] for j in again] == \
        [payloads[j]["result"]["T_final"] for j in job_ids]
    # --- phase 4: per-tenant schema-1 metrics ---------------------------
    stats = svc.stats()
    assert stats["schema"] == 1
    assert stats["jobs"]["done"] == 26
    assert stats["tenants"]["bob"]["cache_hits"] == 12
    assert stats["tenants"]["bob"]["cache_hit_ratio"] == 1.0
    assert stats["tenants"]["alice"]["batched"] == 12
    assert stats["batching"]["batched_jobs"] == 12
    assert stats["batching"]["mean_occupancy"] > 1.0
    names = {(r["name"], r["labels"].get("tenant"))
             for r in stats["metrics"]}
    for name in ("serve.jobs_submitted", "serve.jobs_done",
                 "serve.queue_seconds", "serve.run_seconds"):
        assert (name, "alice") in names
    assert ("serve.cache_hits", "bob") in names
    assert any(r["name"] == "serve.batch_occupancy"
               for r in stats["metrics"])
    for record in stats["metrics"]:
        assert record["type"] in ("counter", "gauge", "histogram")
        assert isinstance(record["labels"], dict)


def test_fault_injected_job_retries_and_completes(service, script,
                                                  tmp_path):
    svc = service
    job_id = svc.submit(
        script,
        params={"Driver.checkpoint_path": str(tmp_path / "ck"),
                "Driver.checkpoint_interval": 1},
        retries=2, fault="kill_rank=0,kill_step=3,kill_max_fires=1",
        tenant="chaos")
    assert svc.drain(timeout=300)
    status = svc.status(job_id)
    assert status["state"] == J.DONE
    assert status["attempts"] == 2
    assert status["restarts"] == 1
    assert status["batched"] is False     # fault jobs never batch
    assert status["cache_key"] == ""      # ... and never cache
    result = svc.result(job_id)
    assert result["supervisor"]["injected_faults"]["kills"] == 1
    assert result["result"]["T_final"] > 0


def test_cache_hit_at_submit_completes_without_running(service, script):
    svc = service
    first = svc.submit(script, tenant="alice")
    assert svc.drain(timeout=300)
    second = svc.submit(script, tenant="bob")
    status = svc.status(second)   # no drain: done at submit time
    assert status["state"] == J.DONE
    assert status["cache_hit"] is True
    assert svc.result(second)["result"] == svc.result(first)["result"]


def test_failed_job_reports_error(service, script):
    svc = service
    job_id = svc.submit(script,
                        params={"ThermoChemistry.mechanism": "no-such"})
    assert svc.drain(timeout=60)
    status = svc.status(job_id)
    assert status["state"] == J.FAILED
    assert status["error"]  # the supervisor's failure summary
    with pytest.raises(ServeError, match="failed"):
        svc.result(job_id)
    assert svc.stats()["tenants"]["default"]["failed"] == 1


def test_cancel_only_hits_queued_jobs(tmp_path, registry, script):
    svc = SimulationService(str(tmp_path / "s"), registry=registry,
                            autostart=False)
    try:
        job_id = svc.submit(script)
        assert svc.cancel(job_id) is True
        assert svc.status(job_id)["state"] == J.CANCELLED
        assert svc.cancel(job_id) is False  # already terminal
        with pytest.raises(ServeError):
            svc.cancel("j-999999")
    finally:
        svc.close()


def test_recovery_requeues_interrupted_jobs(tmp_path, registry, script):
    root = str(tmp_path / "s")
    svc = SimulationService(root, registry=registry, autostart=False)
    queued = svc.submit(script, params={"Initializer.T0": 1015.0})
    crashed = svc.submit(script, params={"Initializer.T0": 1025.0})
    # simulate a process that died mid-run
    svc.store.transition(crashed, (J.QUEUED,), state=J.RUNNING)
    svc.close()

    svc2 = SimulationService(root, registry=registry)
    try:
        assert svc2.drain(timeout=300)
        assert svc2.status(queued)["state"] == J.DONE
        assert svc2.status(crashed)["state"] == J.DONE
    finally:
        svc2.close()


def test_readonly_service_does_not_requeue_running_jobs(tmp_path,
                                                        registry, script):
    """Recovery is gated on start(): a service opened for status/result
    queries must not flip another process's RUNNING job back to QUEUED
    (which would corrupt that runner's RUNNING->DONE transition)."""
    root = str(tmp_path / "s")
    svc = SimulationService(root, registry=registry, autostart=False)
    job_id = svc.submit(script)
    svc.store.transition(job_id, (J.QUEUED,), state=J.RUNNING)
    svc.close()

    observer = SimulationService(root, registry=registry, autostart=False)
    try:
        assert observer.status(job_id)["state"] == J.RUNNING
        observer.stats()
        # still running on disk after read-only access
        assert observer.store.get_record(job_id).state == J.RUNNING
    finally:
        observer.close()


def test_batch_result_count_mismatch_falls_back(tmp_path, registry,
                                                script, monkeypatch):
    """A coalesced solve returning fewer results than conditions must
    not strand jobs in RUNNING — the scheduler reruns them alone."""
    import repro.apps.ignition0d as ig

    real = ig.run_ignition0d_batch
    monkeypatch.setattr(ig, "run_ignition0d_batch",
                        lambda conditions, **kw: real(conditions,
                                                     **kw)[:-1])
    svc = SimulationService(str(tmp_path / "s"), registry=registry,
                            batch_size=16)
    try:
        job_ids = svc.sweep(script, {"Initializer.T0": [1000.0, 1040.0,
                                                        1080.0]})
        assert svc.drain(timeout=300)
        for job_id in job_ids:
            status = svc.status(job_id)
            assert status["state"] == J.DONE
            assert status["batched"] is False  # sequential fallback
            assert svc.result(job_id)["result"]["T_final"] > 0
    finally:
        svc.close()


def test_unbatchable_grid_point_falls_back_to_sequential(service, script):
    svc = service
    # rtol differs: two singleton groups -> solved alone, still correct
    a = svc.submit(script, params={"CvodeComponent.rtol": 1e-6})
    b = svc.submit(script, params={"CvodeComponent.rtol": 1e-9})
    assert svc.drain(timeout=300)
    for job_id in (a, b):
        status = svc.status(job_id)
        assert status["state"] == J.DONE
        assert status["batched"] is False
    ra = svc.result(a)["result"]
    rb = svc.result(b)["result"]
    assert ra["T_final"] == pytest.approx(rb["T_final"], rel=1e-5)
