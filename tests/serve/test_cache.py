"""Content-addressed result cache: addressing, eviction, concurrency."""

import json
import threading

from repro.serve.cache import ResultCache

FP = {"host": "h", "commit": "abc", "fast": True, "python": "3"}


def make_cache(tmp_path, fp=FP):
    return ResultCache(str(tmp_path / "cache"), fingerprint=fp)


class TestAddressing:
    def test_key_is_deterministic(self, tmp_path):
        cache = make_cache(tmp_path)
        a = cache.key("go Driver", {"I.T0": 1000.0})
        b = cache.key("go Driver", {"I.T0": 1000.0})
        assert a == b and len(a) == 64

    def test_key_depends_on_script_params_and_fingerprint(self, tmp_path):
        cache = make_cache(tmp_path)
        base = cache.key("go Driver", {"I.T0": 1000.0})
        assert cache.key("go Driver # v2", {"I.T0": 1000.0}) != base
        assert cache.key("go Driver", {"I.T0": 1001.0}) != base
        other = make_cache(tmp_path, fp={**FP, "commit": "def"})
        assert other.key("go Driver", {"I.T0": 1000.0}) != base

    def test_key_depends_on_nprocs(self, tmp_path):
        # an nprocs==1 run stores one result document, a multi-rank run
        # the per-rank list — different shapes must never share a key
        cache = make_cache(tmp_path)
        base = cache.key("go Driver", {"I.T0": 1000.0})
        assert cache.key("go Driver", {"I.T0": 1000.0}, nprocs=1) == base
        assert cache.key("go Driver", {"I.T0": 1000.0}, nprocs=2) != base

    def test_param_order_is_irrelevant(self, tmp_path):
        cache = make_cache(tmp_path)
        assert cache.key("x", {"A.a": 1, "B.b": 2}) == \
            cache.key("x", {"B.b": 2, "A.a": 1})


class TestHitMiss:
    def test_get_miss_then_hit(self, tmp_path):
        cache = make_cache(tmp_path)
        key = cache.key("s", {})
        assert cache.get(key) is None
        cache.put(key, {"T_final": 1000.5}, job_id="j-000001")
        entry = cache.get(key)
        assert entry["result"] == {"T_final": 1000.5}
        assert entry["job_id"] == "j-000001"
        assert key in cache and len(cache) == 1

    def test_float_results_survive_bitwise(self, tmp_path):
        cache = make_cache(tmp_path)
        key = cache.key("s", {})
        value = 0.1 + 0.2
        cache.put(key, {"v": value})
        assert cache.get(key)["result"]["v"] == value


class TestEviction:
    def test_corrupted_entry_is_evicted_to_a_miss(self, tmp_path):
        cache = make_cache(tmp_path)
        key = cache.key("s", {})
        cache.put(key, {"v": 1})
        path = cache.path(key)
        with open(path, "w") as fh:
            fh.write("{ not json")
        assert cache.get(key) is None        # miss, not a crash
        assert not cache.keys()              # and the entry is gone

    def test_wrong_embedded_key_is_evicted(self, tmp_path):
        cache = make_cache(tmp_path)
        key_a = cache.key("a", {})
        key_b = cache.key("b", {})
        cache.put(key_a, {"v": 1})
        # simulate a mis-filed entry: content of a under b's address
        entry = json.load(open(cache.path(key_a)))
        import os
        os.makedirs(os.path.dirname(cache.path(key_b)), exist_ok=True)
        json.dump(entry, open(cache.path(key_b), "w"))
        assert cache.get(key_b) is None
        assert cache.get(key_a)["result"] == {"v": 1}

    def test_schema_mismatch_is_evicted(self, tmp_path):
        cache = make_cache(tmp_path)
        key = cache.key("s", {})
        cache.put(key, {"v": 1})
        entry = json.load(open(cache.path(key)))
        entry["schema"] = 999
        json.dump(entry, open(cache.path(key), "w"))
        assert cache.get(key) is None


class TestConcurrency:
    def test_racing_writers_one_reader_never_sees_torn_state(self,
                                                             tmp_path):
        cache = make_cache(tmp_path)
        key = cache.key("s", {})
        errors = []

        def put_many(tag):
            try:
                for _ in range(25):
                    cache.put(key, {"tag": tag, "v": 1.5})
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def get_many():
            try:
                for _ in range(50):
                    entry = cache.get(key)
                    if entry is not None:
                        assert entry["result"]["v"] == 1.5
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=put_many, args=(t,))
                   for t in range(4)] + [threading.Thread(target=get_many)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.get(key)["result"]["v"] == 1.5
        assert len(cache) == 1
