"""End-to-end serve job tracing (ISSUE 10 tentpole b): a trace id
minted at submit follows the job through scheduler -> supervised runner
-> backend ranks, and the per-job artifact links them all."""

import json

import repro.obs as obs
from repro.obs.__main__ import main as obs_main
from repro.obs.export import load_chrome_trace
from repro.serve import jobs as J
from repro.serve.jobs import JobRecord
from repro.serve.service import SimulationService


class TestRecordSchema:
    """Schema guard: the new trace fields round-trip through the job
    store's JSON documents and tolerate pre-trace records."""

    def test_trace_fields_round_trip(self):
        rec = JobRecord(job_id="j-000001", trace_id="tr-abc123",
                        trace_path="/tmp/jobs/j-000001/trace.json")
        doc = json.loads(json.dumps(rec.to_json()))
        back = JobRecord.from_json(doc)
        assert back.trace_id == "tr-abc123"
        assert back.trace_path == rec.trace_path

    def test_pre_trace_documents_still_load(self):
        doc = JobRecord(job_id="j-000002").to_json()
        del doc["trace_id"], doc["trace_path"]
        back = JobRecord.from_json(doc)
        assert back.trace_id == "" and back.trace_path == ""


def test_trace_id_minted_even_when_tracing_is_off(service, script):
    job_id = service.submit(script)
    assert service.drain(timeout=120)
    record = service.store.get_record(job_id)
    assert record.trace_id.startswith("tr-")
    assert record.trace_path == ""  # no artifact without the tracer


def test_single_job_trace_links_scheduler_to_ranks(tmp_path, registry,
                                                   script):
    with obs.tracing():
        svc = SimulationService(str(tmp_path / "serve_tr"), workers=1,
                                registry=registry)
        try:
            job_id = svc.submit(script, use_cache=False)
            assert svc.drain(timeout=120)
        finally:
            svc.close()
        record = svc.store.get_record(job_id)
    assert record.state == J.DONE
    assert record.trace_id.startswith("tr-")
    assert record.trace_path
    events = load_chrome_trace(record.trace_path)
    assert events
    # every event in the artifact belongs to this job's trace
    for e in events:
        assert e.args and e.args.get("trace_id") == record.trace_id
    names = {e.name for e in events}
    # submit -> scheduler span -> launcher span -> component spans
    assert "serve.submit" in names
    assert "serve.job" in names
    assert "mpi.world" in names
    assert any(e.cat == "port" for e in events)
    # the scheduler span brackets the world launch
    job_span = next(e for e in events if e.name == "serve.job")
    world = next(e for e in events if e.name == "mpi.world")
    assert job_span.ts <= world.ts
    assert world.ts + world.dur <= job_span.ts + job_span.dur + 1.0


def test_batch_members_link_to_the_shared_batch_span(tmp_path, registry,
                                                     script):
    with obs.tracing():
        svc = SimulationService(str(tmp_path / "serve_b"), workers=1,
                                registry=registry, batch_size=16)
        try:
            job_ids = svc.sweep(
                script, {"Initializer.T0": [1000.0, 1050.0, 1100.0]})
            assert svc.drain(timeout=120)
        finally:
            svc.close()
        records = {j: svc.store.get_record(j) for j in job_ids}
    batched = [r for r in records.values() if r.batched]
    assert batched, "sweep did not coalesce; batching regressed"
    batch_tids = set()
    for record in batched:
        assert record.trace_path
        events = load_chrome_trace(record.trace_path)
        batch_spans = [e for e in events if e.name == "serve.batch"]
        assert len(batch_spans) == 1
        batch_tids.add(batch_spans[0].args["trace_id"])
        done = [e for e in events if e.name == "serve.job_done"
                and e.args.get("job") == record.job_id]
        assert len(done) == 1
        assert done[0].args["batch_trace_id"] == \
            batch_spans[0].args["trace_id"]
        assert done[0].args["batch_size"] == record.batch_size
    # all members of one coalesced solve share one batch trace id
    assert len(batch_tids) == 1
    assert next(iter(batch_tids)).startswith("tr-batch-")


def test_stats_and_cli_surface_the_trace(tmp_path, registry, script,
                                         capsys):
    with obs.tracing():
        svc = SimulationService(str(tmp_path / "serve_s"), workers=1,
                                registry=registry)
        try:
            job_id = svc.submit(script, use_cache=False)
            assert svc.drain(timeout=120)
            stats = svc.stats()
        finally:
            svc.close()
        record = svc.store.get_record(job_id)
    assert stats["traces"][job_id]["trace_id"] == record.trace_id
    assert stats["traces"][job_id]["artifact"] == record.trace_path
    # the obs CLI finds the job through the serve root
    rc = obs_main(["job", job_id, "--root", str(tmp_path / "serve_s")])
    out = capsys.readouterr().out
    assert rc == 0
    assert record.trace_id in out
    assert "events" in out
