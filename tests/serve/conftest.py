"""Shared fixtures for the serve subsystem tests.

``IGNITION_RC`` is the canonical 0D-ignition assembly configured for
test speed (h2-lite stays chemically frozen from radical-free mixtures;
a short horizon keeps the 20-point output grid cheap) — exactly the
template :mod:`repro.serve.batching` recognizes.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.service import SimulationService

IGNITION_RC = """\
repository get-global Ignition0DDriver
instantiate Initializer Initializer
instantiate ThermoChemistry ThermoChemistry
instantiate ProblemModeler problemModeler
instantiate DPDt dPdt
instantiate CvodeComponent CvodeComponent
instantiate StatisticsComponent Statistics
instantiate Ignition0DDriver Driver
parameter ThermoChemistry mechanism h2-lite
parameter Initializer T0 1000.0
parameter Driver t_end 1e-5
connect Initializer chem ThermoChemistry chemistry
connect dPdt chem ThermoChemistry chemistry
connect problemModeler chem ThermoChemistry chemistry
connect problemModeler dpdt dPdt dpdt
connect CvodeComponent rhs problemModeler model
connect Driver ic Initializer ic
connect Driver solver CvodeComponent solver
connect Driver model problemModeler model
connect Driver chem ThermoChemistry chemistry
connect Driver stats Statistics stats
go Driver
"""


@pytest.fixture
def script():
    return IGNITION_RC


@pytest.fixture
def registry():
    """A private registry so metric assertions see only this test."""
    return MetricsRegistry()


@pytest.fixture
def service(tmp_path, registry):
    """A running service on a throwaway root (stopped at teardown)."""
    svc = SimulationService(str(tmp_path / "serve"), workers=2,
                            batch_size=16, registry=registry)
    yield svc
    svc.close()
