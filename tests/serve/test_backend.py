"""Execution-backend plumbing through the service: RA419 admission,
cache-key material, record stamping, batching exclusion."""

from repro.serve import jobs as J

from .conftest import IGNITION_RC


def test_unknown_backend_rejected_instantly(service):
    job_id = service.submit(IGNITION_RC, backend="mp2")
    record = service.status(job_id)
    assert record["state"] == J.FAILED
    assert record["rejected"] is True
    assert service.scheduler.queue_depth() == 0
    ra419 = [f for f in record["findings"] if f["code"] == "RA419"]
    assert len(ra419) == 1
    # the registry's did-you-mean text rides on the finding
    assert "did you mean 'mp'" in ra419[0]["message"]
    assert "RA419" in record["error"]


def test_backend_canonicalized_onto_spec_and_record(service):
    job_id = service.submit(IGNITION_RC, backend=" mp ")
    assert service.store.get_spec(job_id).backend == "mp"
    assert service.status(job_id)["backend"] == "mp"
    service.cancel(job_id)


def test_backend_is_cache_key_material(service):
    k_default = service.cache.key(IGNITION_RC, {}, nprocs=1)
    k_threads = service.cache.key(IGNITION_RC, {}, nprocs=1,
                                  backend="threads")
    k_mp = service.cache.key(IGNITION_RC, {}, nprocs=1, backend="mp")
    # "" means the default backend: same computation, same address
    assert k_default == k_threads
    assert k_mp != k_threads


def test_default_backend_batches_nondefault_does_not(service):
    default_plan = service._plan(J.JobSpec(script=IGNITION_RC))
    assert default_plan is not None
    assert service._plan(J.JobSpec(script=IGNITION_RC,
                                   backend="mp")) is None


def test_job_runs_under_mp_backend_and_matches_threads(service):
    j_thr = service.submit(IGNITION_RC, backend="threads")
    j_mp = service.submit(IGNITION_RC, backend="mp")
    assert service.drain(240)
    thr = service.result(j_thr)
    mp = service.result(j_mp)
    assert mp["result"] == thr["result"]  # exact JSON equality
    record = service.status(j_mp)
    assert record["state"] == J.DONE and record["backend"] == "mp"
    # distinct cache entries: neither run answered the other
    assert record["cache_key"] != service.status(j_thr)["cache_key"]
    assert not record["cache_hit"] and not record["batched"]


def test_sweep_forwards_backend(service):
    job_ids = service.sweep(
        IGNITION_RC, {"Initializer.T0": [1000.0, 1010.0]},
        backend="threads")
    for job_id in job_ids:
        assert service.store.get_spec(job_id).backend == "threads"
        service.cancel(job_id)
