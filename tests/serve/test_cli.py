"""``python -m repro.serve`` front end."""

import json

import pytest

from repro.serve.__main__ import _parse_grid_values, main
from tests.serve.conftest import IGNITION_RC


@pytest.fixture
def rc_file(tmp_path):
    path = tmp_path / "ignition.rc"
    path.write_text(IGNITION_RC)
    return str(path)


@pytest.fixture
def root(tmp_path):
    return str(tmp_path / "serve_root")


def _ids(out: str) -> list[str]:
    return [ln for ln in out.splitlines() if ln.startswith("j-")]


class TestGridParsing:
    def test_comma_list(self):
        assert _parse_grid_values("bdf,adams") == ["bdf", "adams"]

    def test_linear_span(self):
        vals = _parse_grid_values("1000:1100:3")
        assert vals == [1000.0, 1050.0, 1100.0]

    def test_colon_text_is_not_a_span(self):
        assert _parse_grid_values("a:b:c") == ["a:b:c"]


def test_submit_then_run_then_result(root, rc_file, capsys):
    assert main(["--root", root, "submit", rc_file,
                 "--param", "Initializer.T0=1050"]) == 0
    job_id = _ids(capsys.readouterr().out)[0]

    assert main(["--root", root, "status", job_id]) == 0
    assert json.loads(capsys.readouterr().out)["state"] == "queued"

    assert main(["--root", root, "run"]) == 0
    out = capsys.readouterr().out
    assert "processed 1 job(s): 1 done" in out

    assert main(["--root", root, "result", job_id]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["result"]["T0"] == 1050.0
    assert payload["result"]["T_final"] > 0


def test_sweep_run_twice_hits_cache(root, rc_file, capsys):
    argv = ["--root", root, "sweep", rc_file,
            "--grid", "Initializer.T0=1000:1100:3", "--run"]
    assert main(argv) == 0
    first = _ids(capsys.readouterr().out)
    assert len(first) == 3

    assert main(argv) == 0
    second = _ids(capsys.readouterr().out)
    for job_id in second:
        assert main(["--root", root, "status", job_id]) == 0
        assert json.loads(capsys.readouterr().out)["cache_hit"] is True

    assert main(["--root", root, "stats"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["schema"] == 1
    assert stats["jobs"]["done"] == 6
    assert stats["cache"]["hits"] == 3
    assert stats["batching"]["batched_jobs"] == 3


def test_stats_out_writes_schema1_file(root, rc_file, tmp_path, capsys):
    assert main(["--root", root, "submit", rc_file, "--run"]) == 0
    capsys.readouterr()
    out = str(tmp_path / "m" / "stats.json")
    assert main(["--root", root, "stats", "--out", out]) == 0
    doc = json.loads(open(out).read())
    assert doc["schema"] == 1 and "metrics" in doc

def test_cancel_queued_job(root, rc_file, capsys):
    assert main(["--root", root, "submit", rc_file]) == 0
    job_id = _ids(capsys.readouterr().out)[0]
    assert main(["--root", root, "cancel", job_id]) == 0
    assert "cancelled" in capsys.readouterr().out
    assert main(["--root", root, "cancel", job_id]) == 1  # terminal now


def test_failed_run_exits_one(root, rc_file, capsys):
    assert main(["--root", root, "submit", rc_file,
                 "--param", "ThermoChemistry.mechanism=missing",
                 "--run"]) == 1
    assert "FAILED" in capsys.readouterr().err


def test_bad_fault_spec_exits_two(root, rc_file, capsys):
    assert main(["--root", root, "submit", rc_file,
                 "--fault", "explode=1"]) == 2
    assert "unknown fault field" in capsys.readouterr().err


def test_bad_param_exits_two(root, rc_file, capsys):
    assert main(["--root", root, "submit", rc_file,
                 "--param", "oops"]) == 2
    assert "bad --param" in capsys.readouterr().err
