"""Cross-layer hook coverage: one traced app run emits spans from the
port, SAMR, and integrator layers, and the profiling API stays intact on
top of the metrics registry."""

import repro.obs as obs
from repro.apps.reaction_diffusion import run_reaction_diffusion
from repro.cca import Framework
from repro.cca.portproxy import TracingPortProxy
from repro.cca.profiling import Profiler, instrument
from repro.obs import get_registry, trace
from repro.samr.box import Box
from repro.samr.loadbalance import balance_greedy, balance_sfc
from tests.obs.test_scmd_trace import Driver, Worker

#: One small traced flame run, shared across tests (events and the
#: metrics snapshot are captured eagerly — the per-test autouse reset in
#: conftest wipes the live tracer/registry between tests).
_cache: dict = {}


def traced_run():
    if not _cache:
        with obs.tracing():
            result = run_reaction_diffusion(
                nx=16, ny=16, max_levels=2, n_steps=2, dt=1e-7,
                chemistry_mode="batch", initial_regrids=1)
        _cache["result"] = result
        _cache["events"] = trace.events()
        _cache["metrics"] = get_registry().snapshot()
    return _cache


def _metric(snapshot, name, **labels):
    want = {k: str(v) for k, v in labels.items()}
    for m in snapshot:
        if m["name"] == name and m["labels"] == want:
            return m
    return None


def test_spans_from_three_layers():
    cats = {e.cat for e in traced_run()["events"]}
    assert {"port", "samr", "integrator"} <= cats


def test_port_spans_name_provider_and_method():
    port_names = {e.name for e in traced_run()["events"]
                  if e.cat == "port"}
    assert any(name.startswith("AMR_Mesh:") for name in port_names)
    assert all(":" in name and "." in name for name in port_names)


def test_samr_spans_and_metrics():
    run = traced_run()
    samr = {e.name for e in run["events"] if e.cat == "samr"}
    assert "samr.ghost_exchange" in samr
    assert "samr.regrid" in samr
    assert _metric(run["metrics"], "samr.regrids")["value"] >= 1
    assert any(m["name"] == "samr.ghost_exchanges"
               for m in run["metrics"])


def test_integrator_spans_and_metrics():
    run = traced_run()
    names = {e.name for e in run["events"] if e.cat == "integrator"}
    assert "rkc.advance" in names
    steps = _metric(run["metrics"], "integrator.steps", kind="rkc")
    assert steps is not None and steps["value"] >= 1


def test_session_wall_clock_gauge_set():
    wall = _metric(traced_run()["metrics"], "obs.session_wall_seconds")
    assert wall is not None and wall["value"] > 0.0


def test_tracing_off_leaves_no_events():
    traced_run()  # whatever ran before, tracing is off again now
    assert not trace.on
    result = run_reaction_diffusion(nx=16, ny=16, max_levels=1,
                                    n_steps=1, dt=1e-7,
                                    chemistry_mode="batch")
    assert result["n_steps"] == 1
    assert trace.events() == []


def _echo_assembly():
    fw = Framework()
    fw.registry.register_many([Worker, Driver])
    fw.instantiate("Worker", "w")
    fw.instantiate("Driver", "d")
    fw.connect("d", "work", "w", "work")
    return fw


def test_get_port_returns_raw_port_when_disabled():
    fw = _echo_assembly()
    port = fw.services_of("d").get_port("work")
    assert not isinstance(port, TracingPortProxy)
    trace.start()
    try:
        traced = fw.services_of("d").get_port("work")
        assert isinstance(traced, TracingPortProxy)
        assert traced.crunch(10) == port.crunch(10)
    finally:
        trace.stop()
    assert any(e.cat == "port" and e.name == "w:work.crunch"
               for e in trace.events())


def test_profiler_instrument_report_derive_from_registry():
    fw = _echo_assembly()
    prof = instrument(fw)
    assert isinstance(prof, Profiler)
    fw.go("d")
    stats = prof.stats
    crunch = stats["w:work.crunch"]
    assert crunch.calls == 2
    assert crunch.cpu_seconds >= 0.0
    # the numbers are *derived* from the profiler's metrics registry
    calls_metric = prof.registry.get("cca.port.calls",
                                     method="w:work.crunch")
    assert calls_metric.value == crunch.calls
    report = prof.report()
    assert "w:work.crunch" in report
    calls, cpu = prof.by_component()["w:work"]
    assert calls == 2
    assert cpu >= 0.0


def test_load_balance_instants_and_gauge():
    boxes = [Box((0, 0), (7, 7)), Box((8, 0), (15, 7)),
             Box((0, 8), (7, 15)), Box((8, 8), (15, 15))]
    trace.start()
    try:
        balance_greedy(boxes, 2)
        balance_sfc(boxes, 2)
    finally:
        trace.stop()
    instants = [e for e in trace.events()
                if e.name == "samr.load_balance"]
    assert {e.args["strategy"] for e in instants} == {"greedy", "sfc"}
    assert all(e.args["imbalance"] >= 1.0 for e in instants)
    g = get_registry().get("samr.load_imbalance", strategy="greedy")
    assert g is not None and g.value >= 1.0
