"""The critical-path / wait-attribution analyzer and the obs CLI
(ISSUE 10 tentpole c + d), on hand-built synthetic traces where the
right answer is known exactly."""

import json

from repro.obs.aggregate import (
    collective_groups,
    component_of,
    critical_path,
    format_critical_path,
    format_wait_attribution,
    wait_attribution,
)
from repro.obs.export import export_chrome_trace, load_chrome_trace
from repro.obs.trace import Event
from repro.obs.__main__ import main as obs_main


def span(name, cat, ts, dur, rank, **args):
    return Event("X", name, cat, float(ts), float(dur), rank,
                 f"rank {rank}", args or None)


def _two_rank_trace():
    """Rank 0 computes 100 us then waits 890 us at a barrier; rank 1 is
    busy inside ``Slow:solve.step`` for 990 us and arrives last."""
    return [
        span("Fast:solve.step", "port", 0, 100, 0),
        span("mpi.barrier", "mpi", 100, 900, 0, size=2),
        span("Slow:solve.step", "port", 0, 990, 1),
        span("mpi.barrier", "mpi", 990, 10, 1, size=2),
    ]


class TestComponentOf:
    def test_port_span_maps_to_provider(self):
        assert component_of("Slow:solve.step", "port") == "Slow"

    def test_non_port_span_keeps_its_name(self):
        assert component_of("mpi.barrier", "mpi") == "mpi.barrier"


class TestCollectiveGroups:
    def test_aligns_by_sequence_index(self):
        groups = collective_groups(_two_rank_trace())
        assert len(groups) == 1
        g = groups[0]
        assert g["name"] == "mpi.barrier"
        assert g["entries"] == {0: 100.0, 1: 990.0}

    def test_subcommunicator_collectives_excluded(self):
        events = _two_rank_trace() + [
            span("mpi.allreduce", "mpi", 2000, 5, 0, size=1)]
        groups = collective_groups(events)
        assert [g["name"] for g in groups] == ["mpi.barrier"]

    def test_alignment_stops_where_names_diverge(self):
        events = _two_rank_trace() + [
            span("mpi.bcast", "mpi", 1100, 5, 0, size=2),
            span("mpi.reduce", "mpi", 1100, 5, 1, size=2)]
        groups = collective_groups(events)
        assert [g["name"] for g in groups] == ["mpi.barrier"]

    def test_single_rank_trace_has_no_groups(self):
        assert collective_groups([
            span("mpi.barrier", "mpi", 0, 5, 0, size=1)]) == []


class TestWaitAttribution:
    def test_blames_the_last_arriver(self):
        report = wait_attribution(_two_rank_trace())
        assert report["nranks"] == 2
        assert report["collectives"] == 1
        [g] = report["groups"]
        assert g["last_rank"] == 1
        assert g["waits_seconds"][0] == (990 - 100) / 1e6
        assert g["wait_seconds"] == (990 - 100) / 1e6
        # the span open on the straggler when rank 0 entered
        assert g["blame"] == "Slow"
        assert report["by_component"]["Slow"]["wait_seconds"] == \
            g["wait_seconds"]

    def test_formats_without_crashing(self):
        text = format_wait_attribution(
            wait_attribution(_two_rank_trace()))
        assert "Slow" in text and "mpi.barrier" in text


class TestCriticalPath:
    def test_path_pivots_to_the_straggler(self):
        report = critical_path(_two_rank_trace())
        assert report["nranks"] == 2
        segs = report["segments"]
        # chronological: rank 1 is busy until the barrier, then the
        # barrier's last arrival hands the path to whoever ends last
        assert segs[0]["rank"] == 1
        assert segs[0]["t0_us"] == 0.0
        assert segs[0]["via"] == "(start)"
        assert segs[-1]["via"] == "mpi.barrier[0]"
        assert report["path_seconds"] > 0
        # rank 1's busy time goes to the Slow component
        busy = segs[0]["busy"]
        assert busy.get("Slow", 0) > 0
        assert report["by_component"]["Slow"] > 0

    def test_formats_without_crashing(self):
        text = format_critical_path(critical_path(_two_rank_trace()))
        assert "critical path" in text.lower() or "rank" in text


class TestChromeRoundTrip:
    def test_load_inverts_export(self, tmp_path):
        events = _two_rank_trace()
        path = export_chrome_trace(str(tmp_path / "t.json"), events)
        loaded = load_chrome_trace(path)
        assert len(loaded) == len(events)
        orig = sorted((e.name, e.ts, e.dur, e.rank) for e in events)
        back = sorted((e.name, e.ts, e.dur, e.rank) for e in loaded)
        assert back == orig
        # args survive (size=2 on the collectives)
        sizes = [e.args.get("size") for e in loaded
                 if e.name == "mpi.barrier" and e.args]
        assert sizes == [2, 2]

    def test_analyzer_agrees_after_round_trip(self, tmp_path):
        events = _two_rank_trace()
        path = export_chrome_trace(str(tmp_path / "t.json"), events)
        loaded = load_chrome_trace(path)
        assert wait_attribution(loaded)["total_wait_seconds"] == \
            wait_attribution(events)["total_wait_seconds"]


class TestCli:
    def _trace_file(self, tmp_path, name="trace.json"):
        return export_chrome_trace(str(tmp_path / name),
                                   _two_rank_trace())

    def test_critical_path_command(self, tmp_path, capsys):
        path = self._trace_file(tmp_path)
        assert obs_main(["critical-path", path]) == 0
        out = capsys.readouterr().out
        assert "mpi.barrier" in out and "Slow" in out

    def test_critical_path_json(self, tmp_path, capsys):
        path = self._trace_file(tmp_path)
        assert obs_main(["critical-path", path, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["wait_attribution"]["groups"][0]["blame"] == "Slow"
        assert doc["critical_path"]["nranks"] == 2

    def test_top_command(self, tmp_path, capsys):
        path = self._trace_file(tmp_path)
        assert obs_main(["top", path, "--json"]) == 0
        table = json.loads(capsys.readouterr().out)
        assert "Slow" in table and table["Slow"]["spans"] == 1

    def test_merge_command(self, tmp_path, capsys):
        a = export_chrome_trace(str(tmp_path / "a.json"),
                                [e for e in _two_rank_trace()
                                 if e.rank == 0])
        b = export_chrome_trace(str(tmp_path / "b.json"),
                                [e for e in _two_rank_trace()
                                 if e.rank == 1])
        out = str(tmp_path / "merged.json")
        assert obs_main(["merge", out, a, b]) == 0
        merged = load_chrome_trace(out)
        assert {e.rank for e in merged} == {0, 1}
        # the merged file analyzes like the original
        assert wait_attribution(merged)["collectives"] == 1

    def test_missing_file_is_an_error_not_a_crash(self, tmp_path,
                                                  capsys):
        rc = obs_main(["top", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
