"""Regression gate: baseline selection, thresholds, CLI exit codes."""

import json

import pytest

from repro.obs import regress
from repro.obs.regress import (
    NEW,
    NO_HISTORY,
    OK,
    REGRESSION,
    SKIPPED,
    Delta,
    compare_trajectory,
    format_deltas,
)


def _run(metrics, host="ci", fast=True):
    return {"time": 0.0,
            "fingerprint": {"host": host, "fast": fast, "commit": "abc"},
            "metrics": metrics}


def _doc(*runs, bench="demo"):
    return {"schema": 1, "bench": bench, "runs": list(runs)}


# ------------------------------------------------------------- comparisons
def test_clean_run_within_tolerance_is_ok():
    doc = _doc(_run({"t": 1.0}), _run({"t": 1.1}), _run({"t": 1.2}))
    (d,) = compare_trajectory(doc)
    assert d.status == OK
    assert d.baseline == pytest.approx(1.05)  # median of [1.0, 1.1]
    assert d.ratio == pytest.approx(1.2 / 1.05)


def test_injected_2x_slowdown_regresses():
    doc = _doc(_run({"t": 1.0}), _run({"t": 1.05}), _run({"t": 2.1}))
    (d,) = compare_trajectory(doc)
    assert d.status == REGRESSION
    assert d.bench == "demo" and d.metric == "t"


def test_improvement_never_fails():
    doc = _doc(_run({"t": 2.0}), _run({"t": 0.1}))
    (d,) = compare_trajectory(doc)
    assert d.status == OK


def test_median_baseline_resists_one_noisy_run():
    # a single historical spike must not raise the threshold
    doc = _doc(_run({"t": 1.0}), _run({"t": 50.0}), _run({"t": 1.0}),
               _run({"t": 1.4}))
    (d,) = compare_trajectory(doc)
    assert d.baseline == pytest.approx(1.0)
    assert d.status == OK
    doc = _doc(_run({"t": 1.0}), _run({"t": 50.0}), _run({"t": 1.0}),
               _run({"t": 1.6}))
    (d,) = compare_trajectory(doc)
    assert d.status == REGRESSION


def test_fast_mode_history_is_a_different_universe():
    # full-scale history must not gate a fast-mode run
    doc = _doc(_run({"t": 100.0}, fast=False), _run({"t": 1.0}, fast=True))
    (d,) = compare_trajectory(doc)
    assert d.status == NO_HISTORY and d.baseline is None


def test_same_host_history_preferred():
    doc = _doc(_run({"t": 9.0}, host="other"), _run({"t": 1.0}),
               _run({"t": 1.1}))
    (d,) = compare_trajectory(doc)
    assert not d.cross_host
    assert d.baseline == pytest.approx(1.0)


def test_cross_host_fallback_when_no_same_host_history():
    doc = _doc(_run({"t": 1.0}, host="other"),
               _run({"t": 1.1}, host="fresh-runner"))
    (d,) = compare_trajectory(doc)
    assert d.cross_host
    assert d.baseline == pytest.approx(1.0)
    assert d.status == OK
    assert "*" in format_deltas([d])


def test_tiny_baselines_are_skipped():
    doc = _doc(_run({"t": 1e-6}), _run({"t": 1e-3}))
    (d,) = compare_trajectory(doc)
    assert d.status == SKIPPED


def test_new_metric_and_empty_doc():
    doc = _doc(_run({"t": 1.0}), _run({"t": 1.0, "fresh": 5.0}))
    deltas = {d.metric: d for d in compare_trajectory(doc)}
    assert deltas["fresh"].status == NEW
    assert deltas["t"].status == OK
    assert compare_trajectory(_doc()) == []


def test_format_deltas_table():
    text = format_deltas([
        Delta("b1", "t", 1.0, 2.1, 3, REGRESSION),
        Delta("b2", "u", None, 1.0, 0, NEW),
    ])
    assert "REGRESSION" in text
    assert "2.10x" in text
    assert "b2" in text and "new" in text


# ---------------------------------------------------------------- CLI gate
def _write_doc(tmp_path, doc, bench="demo"):
    path = tmp_path / f"BENCH_{bench}.json"
    path.write_text(json.dumps(doc))
    return path


def test_cli_clean_exit_zero(tmp_path, capsys):
    _write_doc(tmp_path, _doc(_run({"t": 1.0}), _run({"t": 1.1})))
    rc = regress.main(["--dir", str(tmp_path)])
    assert rc == 0
    assert "performance gate: clean" in capsys.readouterr().out


def test_cli_regression_exit_one_with_delta_table(tmp_path, capsys):
    _write_doc(tmp_path, _doc(_run({"t": 1.0}), _run({"t": 2.5})))
    rc = regress.main(["--dir", str(tmp_path)])
    captured = capsys.readouterr()
    assert rc == 1
    assert "REGRESSION" in captured.out
    assert "2.50x" in captured.out
    assert "PERFORMANCE REGRESSION DETECTED" in captured.err


def test_cli_tolerance_flag(tmp_path):
    _write_doc(tmp_path, _doc(_run({"t": 1.0}), _run({"t": 1.4})))
    assert regress.main(["--dir", str(tmp_path)]) == 0
    assert regress.main(["--dir", str(tmp_path), "--tolerance", "0.2"]) == 1


def test_cli_no_trajectories(tmp_path, capsys):
    assert regress.main(["--dir", str(tmp_path)]) == 0
    assert regress.main(["--dir", str(tmp_path), "--strict"]) == 1


def test_cli_named_bench_missing_is_usage_error(tmp_path):
    assert regress.main(["--dir", str(tmp_path), "nope"]) == 2


def test_cli_named_bench_selects_file(tmp_path):
    _write_doc(tmp_path, _doc(_run({"t": 1.0}), _run({"t": 2.5}),
                              bench="slow"), bench="slow")
    _write_doc(tmp_path, _doc(_run({"t": 1.0}), _run({"t": 1.0}),
                              bench="fine"), bench="fine")
    assert regress.main(["--dir", str(tmp_path), "fine"]) == 0
    assert regress.main(["--dir", str(tmp_path), "slow"]) == 1


def test_cli_corrupt_trajectory_warns(tmp_path, capsys):
    (tmp_path / "BENCH_bad.json").write_text("{not json")
    assert regress.main(["--dir", str(tmp_path)]) == 0
    assert "unreadable" in capsys.readouterr().err
    assert regress.main(["--dir", str(tmp_path), "--strict"]) == 1


def test_cli_quiet_shows_only_regressions(tmp_path, capsys):
    _write_doc(tmp_path, _doc(_run({"a": 1.0, "b": 1.0}),
                              _run({"a": 1.0, "b": 9.0})))
    rc = regress.main(["--dir", str(tmp_path), "--quiet"])
    out = capsys.readouterr().out
    assert rc == 1
    lines = [ln for ln in out.splitlines() if ln.startswith("demo")]
    assert len(lines) == 1 and "b" in lines[0]


def test_negative_baseline_gated_symmetrically():
    # signed KPIs (e.g. circulation): an unchanged value must be ok,
    # a drift toward zero beyond the |median| band must trip
    doc = _doc(_run({"c": -0.10}), _run({"c": -0.10}))
    (d,) = compare_trajectory(doc)
    assert d.status == OK
    doc = _doc(_run({"c": -0.10}), _run({"c": -0.04}))
    (d,) = compare_trajectory(doc)
    assert d.status == REGRESSION
