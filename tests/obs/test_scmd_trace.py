"""Tracer under SCMD execution (ISSUE satellite: >= 4 rank-threads).

Verifies the per-thread buffers and automatic rank tagging deliver a
valid trace: every rank has its own track, spans within a track never
partially overlap (proper nesting), and MPI events carry the rank's
virtual clock.
"""

import repro.obs as obs
from repro.cca import Component, Port, run_scmd
from repro.cca.ports import GoPort
from repro.mpi import ZERO_COST
from repro.obs import chrome_trace_events, trace

NPROCS = 4


class WorkPort(Port):
    def crunch(self, reps):
        raise NotImplementedError


class _WorkImpl(WorkPort):
    def crunch(self, reps):
        return sum(i * i for i in range(reps))


class Worker(Component):
    def set_services(self, services):
        services.add_provides_port(_WorkImpl(), "work")


class Driver(Component):
    def set_services(self, services):
        self.services = services
        services.register_uses_port("work", "WorkPort")

        class _Go(GoPort):
            def go(inner):
                comm = self.services.get_comm()
                work = self.services.get_port("work")
                for reps in (100, 200):
                    work.crunch(reps)
                if comm is None:  # serial reuse (test_hooks_layers)
                    return 0
                total = comm.allreduce(comm.rank)
                comm.barrier()
                return total

        services.add_provides_port(_Go(), "go")


def _run_traced():
    def setup(framework):
        framework.instantiate("Worker", "w")
        framework.instantiate("Driver", "d")
        framework.connect("d", "work", "w", "work")
        return framework.go("d")

    with obs.tracing():
        results = run_scmd(NPROCS, setup, classes=[Worker, Driver],
                           machine=ZERO_COST)
    assert results == [sum(range(NPROCS))] * NPROCS
    return trace.events()


def test_every_rank_gets_its_own_track():
    events = _run_traced()
    ranks = {e.rank for e in events if e.rank is not None}
    assert ranks == set(range(NPROCS))
    # each rank emitted both port-call and mpi spans
    for rank in range(NPROCS):
        cats = {e.cat for e in events if e.rank == rank}
        assert {"port", "mpi"} <= cats


def test_port_spans_attributed_to_calling_rank():
    events = _run_traced()
    for rank in range(NPROCS):
        crunches = [e for e in events
                    if e.rank == rank and e.name.endswith("crunch")]
        assert len(crunches) == 2  # the two crunch() calls of this rank


def test_tracks_properly_nested_not_interleaved():
    """Within one rank's track, spans must nest or be disjoint — partial
    overlap would mean another thread wrote into this rank's timeline."""
    events = _run_traced()
    for rank in range(NPROCS):
        spans = sorted(
            ((e.ts, e.ts + e.dur) for e in events
             if e.rank == rank and e.ph == "X"),
            key=lambda iv: (iv[0], -iv[1]))
        stack = []
        for start, end in spans:
            while stack and stack[-1] <= start:
                stack.pop()
            if stack:
                assert end <= stack[-1] + 1e-6, \
                    f"rank {rank}: span [{start}, {end}] partially " \
                    f"overlaps enclosing span ending {stack[-1]}"
            stack.append(end)


def test_mpi_events_carry_virtual_time():
    events = _run_traced()
    mpi = [e for e in events if e.cat == "mpi"]
    assert mpi
    assert all(e.args is not None and "vt" in e.args for e in mpi)
    assert all(e.args["vt"] >= 0.0 for e in mpi)


def test_chrome_export_tids_match_ranks():
    _run_traced()
    records = chrome_trace_events()
    tids = {r["tid"] for r in records
            if r["ph"] in ("X", "i") and r["tid"] < 10_000}
    assert tids == set(range(NPROCS))
    names = {r["args"]["name"] for r in records
             if r["ph"] == "M" and r["name"] == "thread_name"}
    assert {f"rank {r}" for r in range(NPROCS)} <= names
