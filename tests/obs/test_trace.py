"""Tracer core: flag semantics, span emission, session lifecycle."""

import json
import os
import subprocess
import sys
import time

import repro
from repro.obs import trace

_SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _child_env(**extra):
    env = dict(os.environ, **extra)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


# ------------------------------------------------------------- disabled path
def test_off_by_default_import_state():
    # conftest stops tracing, but the module default must also be off
    assert trace.on is False
    assert not trace.enabled()


def test_disabled_span_is_shared_singleton():
    s1 = trace.span("a")
    s2 = trace.span("b", cat="mpi", extra=1)
    assert s1 is trace.NULL_SPAN
    assert s2 is trace.NULL_SPAN
    with s1 as inner:
        inner.add(anything=True)  # no-op, no error
    assert trace.events() == []


def test_disabled_instant_records_nothing():
    trace.instant("marker", "app", k=1)
    assert trace.events() == []


# -------------------------------------------------------------- enabled path
def test_span_records_complete_event():
    trace.start()
    with trace.span("work", cat="app", n=3) as s:
        s.add(found=7)
    trace.stop()
    (e,) = trace.events()
    assert e.ph == "X"
    assert e.name == "work"
    assert e.cat == "app"
    assert e.dur >= 0.0
    assert e.args == {"n": 3, "found": 7}


def test_nested_spans_nest_in_time():
    trace.start()
    with trace.span("outer"):
        with trace.span("inner"):
            pass
    trace.stop()
    events = {e.name: e for e in trace.events()}
    outer, inner = events["outer"], events["inner"]
    assert outer.ts <= inner.ts
    assert inner.ts + inner.dur <= outer.ts + outer.dur


def test_complete_api_matches_guarded_call_site():
    trace.start()
    t0 = time.perf_counter() if trace.on else 0.0
    if trace.on:
        trace.complete("op", "mpi", t0, nbytes=128)
    trace.stop()
    (e,) = trace.events()
    assert (e.name, e.cat) == ("op", "mpi")
    assert e.args == {"nbytes": 128}


def test_instant_event():
    trace.start()
    trace.instant("mark", "samr", level=2)
    trace.stop()
    (e,) = trace.events()
    assert e.ph == "i"
    assert e.dur == 0.0
    assert e.args == {"level": 2}


def test_start_clears_and_clear_drops_but_keeps_state():
    trace.start()
    trace.instant("first")
    trace.start()  # clear=True default
    assert trace.events() == []
    trace.instant("second")
    assert [e.name for e in trace.events()] == ["second"]
    trace.clear()
    assert trace.events() == []
    assert trace.on  # clear does not disable
    trace.stop()


def test_stop_keeps_events_readable():
    trace.start()
    trace.instant("kept")
    trace.stop()
    assert [e.name for e in trace.events()] == ["kept"]
    trace.instant("dropped")  # disabled again
    assert len(trace.events()) == 1


def test_events_sorted_by_timestamp():
    trace.start()
    for i in range(5):
        trace.instant(f"e{i}")
    trace.stop()
    ts = [e.ts for e in trace.events()]
    assert ts == sorted(ts)


# ------------------------------------------------------------ env activation
def test_repro_trace_env_exports_at_exit(tmp_path):
    """REPRO_TRACE=1 needs zero app-code changes: importing repro.obs
    enables tracing and an atexit hook writes the Chrome JSON."""
    out = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    code = (
        "import repro.obs as obs\n"
        "assert obs.trace.on\n"
        "with obs.span('payload', cat='app'):\n"
        "    pass\n"
    )
    env = _child_env(REPRO_TRACE="1", REPRO_TRACE_PATH=str(out),
                     REPRO_METRICS_PATH=str(metrics))
    subprocess.run([sys.executable, "-c", code], check=True, env=env)
    doc = json.loads(out.read_text())
    assert any(r.get("name") == "payload" and r["ph"] == "X"
               for r in doc["traceEvents"])
    assert json.loads(metrics.read_text())["schema"] == 1


def test_repro_trace_env_off_values(tmp_path):
    out = tmp_path / "trace.json"
    code = "import repro.obs as obs\nassert not obs.trace.on\n"
    env = _child_env(REPRO_TRACE="0", REPRO_TRACE_PATH=str(out))
    subprocess.run([sys.executable, "-c", code], check=True, env=env)
    assert not out.exists()


# -------------------------------------------------------------- sanitizing
def test_sanitize_folds_separators():
    assert trace.sanitize("a;b c\td\ne") == "a:b_c_d_e"
    assert trace.sanitize("clean.name") == "clean.name"


def test_span_names_sanitized_at_creation():
    """Names are flamegraph-safe the moment the span exists — `;` is the
    folded-stack separator, whitespace breaks the count column."""
    trace.start()
    try:
        with trace.span("bad;name with space", cat="app"):
            pass
        trace.instant("also bad;here", "app")
        t0 = time.perf_counter()
        trace.complete("third;one", "app", t0)
        names = [e.name for e in trace.events()]
    finally:
        trace.stop()
    assert "bad:name_with_space" in names
    assert "also_bad:here" in names
    assert "third:one" in names
    for name in names:
        assert ";" not in name and " " not in name


# ------------------------------------------------------------ active stacks
def _my_stack():
    """This thread's entry in the active-stack registry (threads stay
    registered across spans, so look ourselves up by ident)."""
    import threading
    me = threading.get_ident()
    for ident, _name, rank, frames in trace.active_stacks():
        if ident == me:
            return rank, frames
    return None, ()


def test_active_stacks_follow_span_nesting():
    trace.start()
    try:
        with trace.span("outer", cat="driver"):
            with trace.span("Comp:port.m", cat="port"):
                _, frames = _my_stack()
                assert frames == (("outer", "driver"),
                                  ("Comp:port.m", "port"))
            _, frames = _my_stack()
            assert frames == (("outer", "driver"),)
        _, frames = _my_stack()
        assert frames == ()
    finally:
        trace.stop()


def test_active_stacks_carry_rank():
    from repro.util.logging import rank_context
    trace.start()
    try:
        with rank_context(7):
            with trace.span("work", cat="app"):
                rank, frames = _my_stack()
                assert rank == 7 and frames
    finally:
        trace.stop()


def test_no_stack_maintenance_when_tracing_off():
    assert trace.on is False
    with trace.span("ghost", cat="app"):
        _, frames = _my_stack()
        assert frames == ()
