"""Sampling profiler: lifecycle, span attribution, folded output."""

import os
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.obs import profiler, trace
from repro.obs.profiler import Sample, SamplingProfiler

_SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _child_env(**extra):
    env = dict(os.environ, **extra)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


@pytest.fixture(autouse=True)
def _clean_profiler_state():
    profiler.stop()
    yield
    profiler.stop()


# ------------------------------------------------------------ construction
def test_invalid_interval_rejected():
    with pytest.raises(ValueError):
        SamplingProfiler(interval=0.0)
    with pytest.raises(ValueError):
        SamplingProfiler(interval=-1.0)


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        SamplingProfiler(capacity=0)


def test_off_by_default():
    assert profiler.on is False
    assert profiler.get() is None or not profiler.get().running


# ----------------------------------------------------------- live sampling
def test_sampler_thread_collects_python_frames():
    stop = threading.Event()

    def busy():
        while not stop.is_set():
            sum(range(200))

    worker = threading.Thread(target=busy, name="busy-worker")
    worker.start()
    try:
        with profiler.profiling(interval=0.002) as prof:
            time.sleep(0.15)
    finally:
        stop.set()
        worker.join()
    assert prof.ticks > 0
    assert prof.samples_taken > 0
    samples = prof.samples()
    assert samples and all(isinstance(s, Sample) for s in samples)
    # the busy worker shows up with a real frame stack, root first
    busy_samples = [s for s in samples if s.thread == "busy-worker"]
    assert busy_samples
    assert any("busy" in f for s in busy_samples for f in s.frames)


def test_sampler_attributes_open_spans_and_rank():
    trace.start()
    stop = threading.Event()
    from repro.util.logging import rank_context

    def worker_main():
        with rank_context(3):
            with trace.span("Integrator:step.advance", cat="port"):
                stop.wait(0.2)

    worker = threading.Thread(target=worker_main, name="rank-3")
    worker.start()
    try:
        with profiler.profiling(interval=0.002) as prof:
            time.sleep(0.1)
    finally:
        stop.set()
        worker.join()
        trace.stop()
    tagged = [s for s in prof.samples() if s.spans]
    assert tagged
    assert tagged[0].rank == 3
    assert tagged[0].spans[-1] == ("Integrator:step.advance", "port")


def test_stop_is_idempotent_and_preserves_samples():
    prof = profiler.start(interval=0.002)
    time.sleep(0.05)
    profiler.stop()
    n = len(prof.samples())
    assert n >= 0 and not prof.running
    profiler.stop()  # second stop: no error
    assert len(prof.samples()) == n
    assert profiler.on is False


def test_ring_buffer_is_bounded():
    prof = SamplingProfiler(interval=0.001, capacity=5)
    for i in range(20):
        prof._ring.append(Sample(float(i), "t", None, (), ("f",)))
    assert len(prof.samples()) == 5
    assert prof.samples()[0].ts == 15.0


# ------------------------------------------------------------- folded text
def _mk(spans, frames, rank=None):
    return Sample(0.0, "t", rank, spans, frames)


def test_folded_kinds_and_rank_prefix():
    samples = [
        _mk((("Driver.go", "driver"), ("Chem:rhs.eval", "port")),
            ("mod.f", "mod.g"), rank=1),
        _mk((), ("mod.idle",)),
    ]
    prof = SamplingProfiler()
    spans = prof.folded("spans", samples=samples)
    assert "rank_1;Driver.go;Chem:rhs.eval 1" in spans
    assert "(no span) 1" in spans
    frames = prof.folded("frames", samples=samples)
    assert "rank_1;mod.f;mod.g 1" in frames
    mixed = prof.folded("mixed", samples=samples)
    assert "rank_1;Driver.go;Chem:rhs.eval;mod.f;mod.g 1" in mixed
    with pytest.raises(ValueError):
        prof.folded("bogus")


def test_folded_aggregates_identical_stacks():
    samples = [_mk((), ("a.f", "a.g"))] * 3
    prof = SamplingProfiler()
    assert prof.folded("frames", samples=samples) == "a.f;a.g 3"


def test_export_folded_writes_file(tmp_path):
    prof = SamplingProfiler()
    prof._ring.append(_mk((), ("a.f",)))
    path = prof.export_folded(str(tmp_path / "sub" / "flame.folded"),
                              kind="frames")
    assert open(path).read() == "a.f 1\n"


# -------------------------------------------------------- component table
def test_component_table_self_and_cumulative():
    prof = SamplingProfiler(interval=0.01)
    # 2 samples inside Chem's port method under the driver, 1 driver-only,
    # 1 with no span at all
    for _ in range(2):
        prof._ring.append(_mk(
            (("driver.step", "driver"), ("Chem:rhs.eval", "port")), ("f",)))
    prof._ring.append(_mk((("driver.step", "driver"),), ("f",)))
    prof._ring.append(_mk((), ("f",)))
    table = prof.component_table()
    assert table["Chem"]["self_seconds"] == pytest.approx(0.02)
    assert table["Chem"]["cum_seconds"] == pytest.approx(0.02)
    assert table["driver.step"]["self_seconds"] == pytest.approx(0.01)
    assert table["driver.step"]["cum_seconds"] == pytest.approx(0.03)
    assert table["(no span)"]["self_seconds"] == pytest.approx(0.01)
    report = prof.report()
    assert "Chem" in report and "driver.step" in report


def test_port_span_attribution_strips_method():
    # Provider:port.method -> the providing component instance
    prof = SamplingProfiler(interval=0.01)
    prof._ring.append(_mk((("Diffusion:flux.compute", "port"),), ()))
    prof._ring.append(_mk((("samr.regrid", "samr"),), ()))
    table = prof.component_table()
    assert "Diffusion" in table
    assert "samr.regrid" in table


# ------------------------------------------------------------ env discipline
def test_repro_profile_env_zero_code_activation(tmp_path):
    """REPRO_PROFILE=1 arms the flight recorder at import and an atexit
    hook writes the folded stacks — same discipline as REPRO_TRACE."""
    out = tmp_path / "profile.folded"
    code = (
        "import time\n"
        "import repro.obs.profiler as profiler\n"
        "assert profiler.on\n"
        "t0 = time.perf_counter()\n"
        "while time.perf_counter() - t0 < 0.1:\n"
        "    sum(range(500))\n"
    )
    env = _child_env(REPRO_PROFILE="1", REPRO_PROFILE_INTERVAL="0.002",
                     REPRO_PROFILE_PATH=str(out))
    subprocess.run([sys.executable, "-c", code], check=True, env=env)
    assert out.exists()


def test_repro_profile_env_off_values(tmp_path):
    out = tmp_path / "profile.folded"
    code = "import repro.obs.profiler as profiler\nassert not profiler.on\n"
    env = _child_env(REPRO_PROFILE="0", REPRO_PROFILE_PATH=str(out))
    subprocess.run([sys.executable, "-c", code], check=True, env=env)
    assert not out.exists()
