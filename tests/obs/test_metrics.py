"""Metrics registry: counters, gauges, histograms, labels, thread safety."""

import threading

import pytest

from repro.errors import ObsError
from repro.obs import get_registry
from repro.obs.metrics import MetricsRegistry


def test_counter_get_or_create_and_inc():
    reg = MetricsRegistry()
    c = reg.counter("calls", component="mesh")
    c.inc()
    c.inc(2.5)
    assert reg.counter("calls", component="mesh") is c
    assert c.value == 3.5


def test_labels_distinguish_series_and_order_does_not():
    reg = MetricsRegistry()
    a = reg.counter("x", rank=0, level=1)
    b = reg.counter("x", rank=1, level=1)
    assert a is not b
    assert reg.counter("x", level=1, rank=0) is a  # sorted label key
    assert len(reg) == 2


def test_gauge_set_and_inc():
    reg = MetricsRegistry()
    g = reg.gauge("levels")
    g.set(3)
    assert g.value == 3.0
    g.inc(-1)
    assert g.value == 2.0


def test_histogram_statistics_and_buckets():
    reg = MetricsRegistry()
    h = reg.histogram("wait")
    for v in (5e-7, 5e-4, 2.0):
        h.observe(v)
    assert h.count == 3
    assert h.mean == pytest.approx((5e-7 + 5e-4 + 2.0) / 3)
    assert h.min == pytest.approx(5e-7)
    assert h.max == pytest.approx(2.0)
    snap = h.snapshot()
    assert snap["buckets"]["le_1e-06"] == 1
    assert snap["buckets"]["le_0.001"] == 1
    assert snap["buckets"]["le_10"] == 1
    assert snap["buckets"]["overflow"] == 0


def test_histogram_overflow_bucket():
    reg = MetricsRegistry()
    h = reg.histogram("t")
    h.observe(1e6)
    assert h.snapshot()["buckets"]["overflow"] == 1


def test_kind_clash_raises():
    reg = MetricsRegistry()
    reg.counter("dual")
    with pytest.raises(ObsError, match="already registered as counter"):
        reg.gauge("dual")


def test_get_and_find():
    reg = MetricsRegistry()
    reg.counter("hits", rank=0).inc(4)
    reg.counter("hits", rank=1).inc(7)
    assert reg.get("hits", rank=1).value == 7.0
    assert reg.get("hits", rank=9) is None
    found = {labels["rank"]: m.value for labels, m in reg.find("hits")}
    assert found == {"0": 4.0, "1": 7.0}


def test_snapshot_is_flat_and_json_shaped():
    reg = MetricsRegistry()
    reg.counter("a", k="v").inc()
    reg.gauge("b").set(1.5)
    snap = reg.snapshot()
    assert [s["name"] for s in snap] == ["a", "b"]
    assert snap[0] == {"name": "a", "type": "counter",
                      "labels": {"k": "v"}, "value": 1.0}
    assert snap[1]["type"] == "gauge"


def test_reset_and_names():
    reg = MetricsRegistry()
    reg.counter("one")
    reg.gauge("two")
    assert reg.names() == ["one", "two"]
    reg.reset()
    assert len(reg) == 0


def test_default_registry_is_shared():
    assert get_registry() is get_registry()


def test_counter_thread_safety():
    reg = MetricsRegistry()
    c = reg.counter("contended")
    n, per = 8, 2000

    def work():
        for _ in range(per):
            c.inc()

    threads = [threading.Thread(target=work) for _ in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == n * per


# ---------------------------------------------------------- percentiles
def test_histogram_percentile_empty_is_none():
    h = MetricsRegistry().histogram("empty")
    assert h.percentile(50.0) is None
    snap = h.snapshot()
    assert snap["p50"] is None and snap["p95"] is None


def test_histogram_percentile_single_value_exact():
    # all mass in one point: every percentile is that point exactly
    # (the clamp to [min, max] guarantees it regardless of bucket width)
    h = MetricsRegistry().histogram("point")
    for _ in range(10):
        h.observe(0.0042)
    for q in (0.0, 50.0, 95.0, 100.0):
        assert h.percentile(q) == pytest.approx(0.0042)


def test_histogram_percentile_uniform_within_bucket_exact():
    # custom single bucket [0, 1]: linear spread makes the estimate the
    # analytic uniform percentile
    h = MetricsRegistry().histogram("uniform", edges=(1.0,))
    for i in range(100):
        h.observe(i / 100.0)
    assert h.percentile(50.0) == pytest.approx(0.5, abs=0.02)
    assert h.percentile(95.0) == pytest.approx(0.95, abs=0.02)


def test_histogram_percentile_respects_bucket_separation():
    # two well-separated modes: p50 stays in the low bucket, p95 in the
    # high one — the bucket walk picks the right bucket every time
    h = MetricsRegistry().histogram("bimodal")
    for _ in range(90):
        h.observe(5e-5)       # bucket (1e-5, 1e-4]
    for _ in range(10):
        h.observe(5.0)        # bucket (1.0, 10]
    p50 = h.percentile(50.0)
    p95 = h.percentile(95.0)
    assert 1e-5 < p50 <= 1e-4
    assert 1.0 < p95 <= 5.0   # clamped at the observed max
    assert h.percentile(100.0) == pytest.approx(5.0)


def test_histogram_percentile_overflow_bucket_clamped():
    # mass beyond the last edge: estimates clamp to the observed max
    h = MetricsRegistry().histogram("over")
    h.observe(1e5)
    h.observe(2e5)
    assert h.percentile(100.0) == pytest.approx(2e5)
    p95 = h.percentile(95.0)
    assert 1e5 <= p95 <= 2e5
    snap = h.snapshot()
    assert 1e5 <= snap["p50"] <= 2e5
