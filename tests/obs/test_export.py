"""Exporters: Chrome trace_event JSON structure and metrics JSON."""

import json

from repro.obs import (
    chrome_trace_events,
    export_chrome_trace,
    export_metrics,
    get_registry,
    metrics_payload,
    trace,
)
from repro.util.logging import rank_context


def _emit(name, rank=None, cat="app", ph="X", **args):
    with rank_context(rank):
        if ph == "X":
            with trace.span(name, cat=cat, **args):
                pass
        else:
            trace.instant(name, cat, **args)


def test_chrome_events_have_required_fields():
    trace.start()
    _emit("op", rank=0, nbytes=4)
    _emit("mark", rank=0, ph="i")
    trace.stop()
    records = chrome_trace_events()
    x = next(r for r in records if r["ph"] == "X")
    assert {"name", "cat", "ts", "dur", "pid", "tid"} <= set(x)
    assert x["tid"] == 0
    assert x["args"] == {"nbytes": 4}
    i = next(r for r in records if r["ph"] == "i")
    assert i["s"] == "t"
    assert "dur" not in i


def test_one_track_per_rank_with_metadata():
    trace.start()
    for rank in (0, 1, 2):
        _emit("step", rank=rank)
    trace.stop()
    records = chrome_trace_events()
    names = {r["tid"]: r["args"]["name"] for r in records
             if r["ph"] == "M" and r["name"] == "thread_name"}
    assert {0: "rank 0", 1: "rank 1", 2: "rank 2"} == {
        t: n for t, n in names.items() if t < 3}
    assert any(r["name"] == "process_name" for r in records
               if r["ph"] == "M")


def test_unranked_threads_get_tracks_past_rank_block():
    trace.start()
    _emit("serial", rank=None)
    trace.stop()
    records = chrome_trace_events()
    x = next(r for r in records if r["ph"] == "X")
    assert x["tid"] >= 10_000


def test_export_chrome_trace_roundtrip(tmp_path):
    trace.start()
    _emit("op", rank=1)
    trace.stop()
    path = export_chrome_trace(str(tmp_path / "t.json"))
    doc = json.loads(open(path).read())
    assert doc["displayTimeUnit"] == "ms"
    assert any(r.get("name") == "op" for r in doc["traceEvents"])


def test_metrics_payload_schema_and_export(tmp_path):
    reg = get_registry()
    reg.counter("mpi.sends", rank=0).inc(3)
    payload = metrics_payload()
    assert payload["schema"] == 1
    (m,) = payload["metrics"]
    assert m == {"name": "mpi.sends", "type": "counter",
                 "labels": {"rank": "0"}, "value": 3.0}
    path = export_metrics(str(tmp_path / "m.json"))
    assert json.loads(open(path).read()) == payload
