"""Cross-rank aggregation reducers and the mpirun teardown hook."""

import pytest

from repro.mpi import mpirun
from repro.obs import aggregate, get_registry, trace
from repro.obs.aggregate import (
    CLOCK_MAX_METRIC,
    CLOCK_MEAN_METRIC,
    IMBALANCE_METRIC,
    RANK_CLOCK_METRIC,
    imbalance,
    percentile,
    rank_clock_summary,
    rank_trace_summary,
    record_rank_clocks,
    reduce_rank_traces,
    summarize,
)
from repro.obs.metrics import MetricsRegistry


# --------------------------------------------------------------- percentile
def test_percentile_exact_order_statistics():
    data = [4.0, 1.0, 3.0, 2.0]
    assert percentile(data, 0.0) == 1.0
    assert percentile(data, 100.0) == 4.0
    assert percentile(data, 50.0) == pytest.approx(2.5)
    # numpy-style linear interpolation: pos = 0.95 * 3 = 2.85
    assert percentile(data, 95.0) == pytest.approx(3.85)


def test_percentile_single_value_and_clamping():
    assert percentile([7.0], 50.0) == 7.0
    assert percentile([1.0, 2.0], -10.0) == 1.0
    assert percentile([1.0, 2.0], 400.0) == 2.0


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        percentile([], 50.0)


# ---------------------------------------------------------------- imbalance
def test_imbalance_ratio_max_over_avg():
    # one rank takes twice the average: (2+2/3)/... use explicit numbers
    assert imbalance([1.0, 1.0, 1.0, 1.0]) == pytest.approx(1.0)
    assert imbalance([1.0, 3.0]) == pytest.approx(1.5)
    assert imbalance([2.0, 2.0, 8.0]) == pytest.approx(2.0)


def test_imbalance_degenerate_inputs():
    assert imbalance([]) == 1.0
    assert imbalance([0.0, 0.0]) == 1.0


def test_summarize_block():
    stats = summarize([1.0, 2.0, 3.0, 4.0])
    assert stats["n"] == 4
    assert stats["min"] == 1.0
    assert stats["max"] == 4.0
    assert stats["mean"] == pytest.approx(2.5)
    assert stats["p50"] == pytest.approx(2.5)
    assert stats["p95"] == pytest.approx(3.85)
    assert stats["imbalance"] == pytest.approx(1.6)
    with pytest.raises(ValueError):
        summarize([])


def test_rank_clock_summary_shape():
    s = rank_clock_summary([2.0, 4.0])
    assert s["per_rank"] == [2.0, 4.0]
    assert s["stats"]["imbalance"] == pytest.approx(4.0 / 3.0)


def test_record_rank_clocks_sets_gauges():
    reg = MetricsRegistry()
    record_rank_clocks([1.0, 2.0, 3.0, 6.0], registry=reg)
    assert reg.gauge(RANK_CLOCK_METRIC, rank=0).value == 1.0
    assert reg.gauge(RANK_CLOCK_METRIC, rank=3).value == 6.0
    assert reg.gauge(IMBALANCE_METRIC).value == pytest.approx(2.0)
    assert reg.gauge(CLOCK_MAX_METRIC).value == 6.0
    assert reg.gauge(CLOCK_MEAN_METRIC).value == 3.0


# ------------------------------------------------------------ trace roll-up
def test_rank_trace_summary_and_reduction():
    def ev(name, cat, ph, dur, rank):
        return trace.Event(ph=ph, name=name, cat=cat, ts=0.0, dur=dur,
                           rank=rank, thread="t", args=None)

    events = [
        ev("a", "mpi", "X", 2e6, 0),
        ev("b", "mpi", "X", 4e6, 1),
        ev("c", "app", "X", 1e6, 1),
        ev("i", "app", "i", 0.0, 1),
        ev("untagged", "app", "X", 9e6, None),
    ]
    per_rank = rank_trace_summary(events)
    assert sorted(per_rank) == [0, 1]
    assert per_rank[0]["busy_seconds"] == {"mpi": pytest.approx(2.0)}
    assert per_rank[1]["events"] == 3
    assert per_rank[1]["busy_seconds"]["mpi"] == pytest.approx(4.0)
    reduced = reduce_rank_traces(per_rank)
    assert reduced["busy.mpi"]["max"] == pytest.approx(4.0)
    assert reduced["busy.mpi"]["imbalance"] == pytest.approx(4.0 / 3.0)
    # rank 0 has no app spans -> counted as 0.0, not skipped
    assert reduced["busy.app"]["min"] == 0.0
    assert reduce_rank_traces({}) == {}


def test_format_rank_summary_text():
    text = aggregate.format_rank_summary(rank_clock_summary([1.0, 3.0]))
    assert "rank 0: 1" in text
    assert "rank 1: 3" in text
    assert "load imbalance (max/avg): 1.5000" in text


# ------------------------------------------- mpirun teardown (4-rank SCMD)
def test_mpirun_teardown_records_four_rank_summary():
    """A traced 4-rank SCMD run emits the aggregated per-rank clock
    summary (gauges + teardown instant with max/avg imbalance)."""
    trace.start()
    try:
        def main(comm):
            # unequal per-rank work -> a real imbalance statistic
            comm.advance(1.0 + comm.rank)
            return comm.rank

        results = mpirun(4, main)
        assert results == [0, 1, 2, 3]
        reg = get_registry()
        clocks = [reg.gauge(RANK_CLOCK_METRIC, rank=r).value
                  for r in range(4)]
        assert clocks == sorted(clocks) and clocks[0] >= 1.0
        imb = reg.gauge(IMBALANCE_METRIC).value
        assert imb == pytest.approx(max(clocks) * 4 / sum(clocks))
        teardown = [e for e in trace.events()
                    if e.name == "mpi.world_teardown"]
        assert len(teardown) == 1
        assert teardown[0].args["nprocs"] == 4
        assert teardown[0].args["imbalance"] == pytest.approx(imb)
    finally:
        trace.stop()


def test_mpirun_no_aggregation_when_tracing_off():
    def main(comm):
        comm.advance(1.0)
        return comm.rank

    assert trace.on is False
    mpirun(4, main)
    assert len(get_registry()) == 0
    assert trace.events() == []
