"""Cross-process tracing under the ``mp`` backend (ISSUE 10 tentpole a).

Mirror of ``test_scmd_trace.py`` with forked worker *processes* instead
of rank-threads: each worker drains its span buffers, metrics snapshot
and (when armed) profiler samples at teardown and ships them through
the result queue; the parent folds everything into one coherent
rank-attributed trace.  A traced ``backend="mp"`` run must therefore
produce the same single multi-rank artifact a ``threads`` run does.
"""

import time

import pytest

import repro.obs as obs
from repro.apps import run_reaction_diffusion
from repro.mpi import ZERO_COST, mpirun
from repro.obs import chrome_trace_events, get_registry, profiler, trace

NPROCS = 4

_memo: dict = {}


def _rd_main(comm):
    res = run_reaction_diffusion(comm=comm, nx=16, ny=16, max_levels=1,
                                 n_steps=2, dt=1e-7,
                                 chemistry_mode="batch")
    return res["n_steps"]


def _light_main(comm):
    comm.barrier()
    return comm.allreduce(comm.rank)


def _run_traced():
    """One traced 4-rank mp reaction-diffusion run, memoized (the
    parent-side fold is what every test here inspects)."""
    if "events" in _memo:
        return _memo["events"], _memo["metrics"]
    with obs.tracing():
        results = mpirun(NPROCS, _rd_main, machine=ZERO_COST,
                         backend="mp")
        snapshot = get_registry().snapshot()
    assert results == [2] * NPROCS
    _memo["events"] = trace.events()
    _memo["metrics"] = snapshot
    return _memo["events"], _memo["metrics"]


def test_every_rank_ships_its_spans_home():
    events, _ = _run_traced()
    ranks = {e.rank for e in events if e.rank is not None}
    assert ranks == set(range(NPROCS))
    # each worker shipped both port-call and mpi spans
    for rank in range(NPROCS):
        cats = {e.cat for e in events if e.rank == rank}
        assert {"port", "mpi"} <= cats


def test_single_export_holds_all_ranks():
    events, _ = _run_traced()
    records = chrome_trace_events(events)
    tids = {r["tid"] for r in records
            if r["ph"] in ("X", "i") and r["tid"] < 10_000}
    assert set(range(NPROCS)) <= tids
    names = {r["args"]["name"] for r in records
             if r["ph"] == "M" and r["name"] == "thread_name"}
    assert {f"rank {r}" for r in range(NPROCS)} <= names


def test_per_rank_timestamps_monotonic_and_nested():
    """Workers share the parent's perf_counter origin, so every rank's
    shipped track must be internally consistent: timestamps ordered and
    spans properly nested (no partial overlap)."""
    events, _ = _run_traced()
    for rank in range(NPROCS):
        spans = sorted(
            ((e.ts, e.ts + e.dur) for e in events
             if e.rank == rank and e.ph == "X"),
            key=lambda iv: (iv[0], -iv[1]))
        assert spans
        assert all(ts >= 0 for ts, _ in spans)
        stack = []
        for start, end in spans:
            while stack and stack[-1] <= start:
                stack.pop()
            if stack:
                assert end <= stack[-1] + 1e-6, \
                    f"rank {rank}: span [{start}, {end}] partially " \
                    f"overlaps enclosing span ending {stack[-1]}"
            stack.append(end)


def test_world_span_encloses_worker_spans():
    """The parent's ``mpi.world`` launcher span brackets the forked
    workers' timelines — the joint a serve trace hangs off."""
    events, _ = _run_traced()
    worlds = [e for e in events
              if e.name == "mpi.world" and e.ph == "X"]
    assert len(worlds) == 1
    w = worlds[0]
    assert w.args["backend"] == "mp" and w.args["nprocs"] == NPROCS
    ranked = [e for e in events if e.rank is not None and e.ph == "X"]
    assert min(e.ts for e in ranked) >= w.ts - 1.0
    assert max(e.ts + e.dur for e in ranked) <= w.ts + w.dur + 1.0


def test_worker_metrics_fold_into_parent_registry():
    """Satellite 1 regression: before trace shipping, a REPRO_BACKEND=mp
    run lost every counter incremented inside the workers."""
    _, metrics = _run_traced()
    by_name: dict[str, set] = {}
    for rec in metrics:
        by_name.setdefault(rec["name"], set()).add(
            rec["labels"].get("rank"))
    colls = by_name.get("mpi.collectives", set())
    assert {str(r) for r in range(NPROCS)} <= {str(r) for r in colls
                                               if r is not None}
    # teardown rank clocks (parent-side gauges fed by shipped clocks)
    assert "mpi.rank_clock_seconds" in by_name


def test_trace_context_propagates_into_workers():
    """A trace context set in the parent (e.g. a serve job id) must tag
    the spans each forked worker ships back."""
    with obs.tracing():
        with trace.context(trace_id="tr-ctx-test", job="j-ctx"):
            results = mpirun(NPROCS, _light_main, machine=ZERO_COST,
                             backend="mp")
        events = trace.events()
    assert results == [sum(range(NPROCS))] * NPROCS
    ranked = [e for e in events if e.rank is not None]
    assert ranked
    for e in ranked:
        assert e.args and e.args.get("trace_id") == "tr-ctx-test"
        assert e.args.get("job") == "j-ctx"


def test_obs_ship_kill_switch(monkeypatch):
    """REPRO_OBS_SHIP=0 disables shipping (the overhead-bench baseline):
    worker spans stay in the workers and die with them."""
    monkeypatch.setenv("REPRO_OBS_SHIP", "0")
    with obs.tracing():
        mpirun(NPROCS, _light_main, machine=ZERO_COST, backend="mp")
        events = trace.events()
    assert not [e for e in events if e.rank is not None]
    # the parent's own launcher span is still there
    assert [e for e in events if e.name == "mpi.world"]


def _busy_main(comm):
    deadline = time.time() + 0.15
    total = 0
    while time.time() < deadline:
        total += sum(i * i for i in range(2000))
    comm.barrier()
    return comm.rank


def test_profiler_samples_ship_rank_tagged():
    """Satellite 2: REPRO_PROFILE armed in the parent re-arms inside each
    forked worker; folded samples come home tagged with the rank."""
    profiler.start(interval=0.005)
    try:
        with obs.tracing():
            mpirun(NPROCS, _busy_main, machine=ZERO_COST, backend="mp")
    finally:
        prof = profiler.stop()
    assert prof is not None
    ranks = {s.rank for s in prof.samples() if s.rank is not None}
    assert len(ranks) >= 2, f"worker samples missing, got ranks {ranks}"
    folded = prof.folded()
    assert any(line.startswith("rank_")
               for line in folded.splitlines())
