"""Shared fixtures: every obs test leaves the process-global tracer and
default registry exactly as it found them (off and empty)."""

import pytest

from repro.obs import get_registry, trace


@pytest.fixture(autouse=True)
def _clean_obs_state():
    trace.stop()
    trace.clear()
    get_registry().reset()
    yield
    trace.stop()
    trace.clear()
    get_registry().reset()
