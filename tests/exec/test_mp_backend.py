"""The multiprocessing backend: real worker processes, same semantics.

Every assertion here is about *contract parity* with the thread
backend — same results, same failure shapes, same communicator algebra —
because the whole point of the registry is that rc-scripts and
components cannot tell the transports apart.
"""

import os
import signal
import warnings

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, Op, ZERO_COST, mpirun, sanitizer
from repro.mpi.launcher import RankFailure


def run(n, fn, **kw):
    return mpirun(n, fn, machine=ZERO_COST, backend="mp", **kw)


# -------------------------------------------------------------------- basics
def test_ranks_are_distinct_processes():
    def main(comm):
        return (comm.rank, comm.size, os.getpid())

    out = run(3, main)
    assert [(r, s) for r, s, _ in out] == [(r, 3) for r in range(3)]
    pids = {pid for _, _, pid in out}
    assert len(pids) == 3 and os.getpid() not in pids


def test_env_selection(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "mp")

    def main(comm):
        return os.getpid()

    pids = mpirun(2, main, machine=ZERO_COST)
    assert os.getpid() not in pids


# ----------------------------------------------------------------------- p2p
def test_send_recv_small_object():
    def main(comm):
        if comm.rank == 0:
            comm.send({"a": 1, "b": [1, 2]}, dest=1, tag=7)
            return None
        return comm.recv(source=0, tag=7)

    assert run(2, main)[1] == {"a": 1, "b": [1, 2]}


def test_send_recv_large_array_via_shared_memory():
    """A >4 KiB array takes the shared-segment path; the receiver gets
    an exact, isolated copy (mutating it cannot reach the sender)."""

    def main(comm):
        data = np.arange(8192.0) + comm.rank
        if comm.rank == 0:
            comm.send(data, dest=1)
            comm.barrier()
            return float(data.sum())
        got = comm.recv(source=0)
        ok = bool(np.array_equal(got, np.arange(8192.0)))
        got[:] = -1.0  # must not corrupt anything anywhere
        comm.barrier()
        return ok

    total, ok = run(2, main)
    assert ok is True
    assert total == float(np.arange(8192.0).sum())


def test_sendrecv_and_any_source():
    def main(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        got = comm.sendrecv(comm.rank, dest=right, source=left)
        extra = None
        if comm.rank == 0:
            comm.send("probe-me", dest=1, tag=9)
        if comm.rank == 1:
            extra = comm.recv(source=ANY_SOURCE, tag=9)
        return got, extra

    out = run(3, main)
    assert [g for g, _ in out] == [2, 0, 1]
    assert out[1][1] == "probe-me"


# ----------------------------------------------------------------- collectives
def test_collectives_match_threads_backend():
    def main(comm):
        return (comm.allreduce(comm.rank + 1, op=Op.SUM),
                comm.allreduce(comm.rank, op=Op.MAX),
                comm.bcast(comm.rank * 10 or "root", root=1),
                comm.allgather(comm.rank ** 2),
                sorted(comm.alltoall([comm.rank] * comm.size)))

    assert run(4, main) == mpirun(4, main, machine=ZERO_COST,
                                  backend="threads")


def test_reduce_array_payload():
    def main(comm):
        arr = np.full(4, float(comm.rank))
        total = comm.allreduce(arr, op=Op.SUM)
        return total.tolist()

    assert run(3, main) == [[3.0, 3.0, 3.0, 3.0]] * 3


def test_split_and_nested_collectives():
    def main(comm):
        half = comm.split(color=comm.rank % 2, key=comm.rank)
        sub = half.allreduce(comm.rank, op=Op.SUM)
        world = comm.allreduce(sub, op=Op.SUM)
        return half.size, sub, world

    out = run(4, main)
    assert out == [(2, 2, 12), (2, 4, 12), (2, 2, 12), (2, 4, 12)]
    assert out == mpirun(4, main, machine=ZERO_COST, backend="threads")


# -------------------------------------------------------------------- failure
def test_exception_carries_remote_traceback():
    def main(comm):
        if comm.rank == 2:
            raise ValueError("boom on rank 2")
        comm.barrier()
        return comm.rank

    with pytest.raises(RankFailure) as excinfo:
        run(4, main)
    msg = str(excinfo.value)
    assert "rank 2" in msg and "ValueError" in msg
    assert "boom on rank 2" in msg
    # the child's *actual* traceback rode home, not a parent-side stub
    failure = excinfo.value.failures[2]
    assert "boom on rank 2" in getattr(failure, "remote_traceback", "")


def test_sigkill_surfaces_as_worker_death():
    def main(comm):
        if comm.rank == 1:
            os.kill(os.getpid(), signal.SIGKILL)
        comm.barrier()
        return comm.rank

    with pytest.raises(RankFailure) as excinfo:
        run(2, main)
    assert "WorkerDied" in str(excinfo.value)


# ------------------------------------------------------------------ sanitizer
def test_armed_sanitizer_degrades_with_warning():
    was = sanitizer.on
    sanitizer.configure()
    try:
        def main(comm):
            return comm.allreduce(comm.rank)

        with pytest.warns(RuntimeWarning, match="thread-backend only"):
            out = run(2, main)
        assert out == [1, 1]  # degraded, not broken
    finally:
        if not was:
            sanitizer.deactivate()


def test_unarmed_sanitizer_emits_no_warning():
    was = sanitizer.on
    sanitizer.deactivate()
    try:
        def main(comm):
            return comm.rank

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert run(2, main) == [0, 1]
    finally:
        if was:
            sanitizer.configure()


# -------------------------------------------------------------- virtual time
def test_virtual_clocks_returned_in_rank_order():
    def main(comm):
        comm.barrier()
        return comm.rank

    pairs = mpirun(3, main, machine=ZERO_COST, backend="mp",
                   return_clocks=True)
    assert [v for v, _ in pairs] == [0, 1, 2]
    assert all(clock >= 0.0 for _, clock in pairs)
