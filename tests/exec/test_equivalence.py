"""Transport equivalence: the paper's applications must be *bit
identical* between the thread and multiprocessing backends.

This is the property that lets the result cache refuse to share entries
across backends without anyone losing sleep: equivalence is proven
here, run by run, rather than assumed by the cache key.
"""

from repro.analysis.wiring import default_classes
from repro.apps import run_reaction_diffusion, run_shock_interface
from repro.mpi import ZERO_COST, mpirun
from repro.resilience import faults
from repro.resilience.runner import supervise

from tests.resilience.test_runner import flame_rc


def test_reaction_diffusion_four_ranks_bit_identical():
    def main(comm):
        res = run_reaction_diffusion(
            comm=comm, nx=16, ny=16, max_levels=1, n_steps=2, dt=1e-7,
            chemistry_mode="batch")
        return res["T_max"], res["n_steps"]

    thr = mpirun(4, main, machine=ZERO_COST, backend="threads")
    mp = mpirun(4, main, machine=ZERO_COST, backend="mp")
    assert mp == thr  # full-precision equality, not approx


def test_shock_interface_amr_bit_identical():
    def main(comm):
        res = run_shock_interface(comm=comm, nx=32, ny=16, max_levels=2,
                                  t_end_over_tau=0.4, regrid_interval=3,
                                  initial_regrids=1)
        return res["circulation_min"], res["total_cells"]

    thr = mpirun(2, main, machine=ZERO_COST, backend="threads")
    mp = mpirun(2, main, machine=ZERO_COST, backend="mp")
    assert mp == thr


def test_crash_restore_drill_under_mp(tmp_path):
    """PR-4 supervisor drill on the mp backend: kill a worker process
    mid-run, restart from checkpoint, finish — and do NOT re-kill on the
    retry (the injector's counters survive the process boundary)."""
    faults.configure(faults.FaultPlan(kill_rank=1, kill_step=3,
                                      kill_max_fires=1))
    report = supervise(flame_rc(tmp_path), default_classes(), nprocs=2,
                       retries=2, machine=ZERO_COST, backend="mp")
    assert report.ok
    assert report.attempts == 2
    assert report.restarts == 1
    assert report.injected["kills"] == 1
    assert report.results[0]["n_steps"] == 5


def test_supervised_results_identical_across_backends(tmp_path):
    (tmp_path / "thr").mkdir()
    (tmp_path / "mp").mkdir()
    thr = supervise(flame_rc(tmp_path / "thr"), default_classes(),
                    nprocs=2, machine=ZERO_COST, backend="threads")
    mp = supervise(flame_rc(tmp_path / "mp"), default_classes(),
                   nprocs=2, machine=ZERO_COST, backend="mp")
    assert thr.ok and mp.ok
    assert mp.results[0]["T_max"] == thr.results[0]["T_max"]
    assert mp.results[0]["n_steps"] == thr.results[0]["n_steps"]
