"""The backend registry: resolution order, did-you-mean, availability."""

import pytest

from repro.errors import MPIError
from repro.exec import (
    DEFAULT_BACKEND,
    BackendUnavailableError,
    ExecBackend,
    backend_names,
    get_backend,
    register,
    resolve_name,
)


def test_builtins_registered():
    names = backend_names()
    assert names[0] == DEFAULT_BACKEND == "threads"
    assert set(names) >= {"threads", "mp", "mpiexec"}


def test_resolve_default_is_threads(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert resolve_name(None) == "threads"
    assert resolve_name("") == "threads"


def test_resolve_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "mp")
    assert resolve_name(None) == "mp"
    # an explicit keyword beats the environment
    assert resolve_name("threads") == "threads"


def test_resolve_strips_whitespace():
    assert resolve_name("  mp ") == "mp"


def test_unknown_backend_did_you_mean():
    with pytest.raises(MPIError) as excinfo:
        resolve_name("mp2")
    msg = str(excinfo.value)
    assert "unknown execution backend 'mp2'" in msg
    assert "did you mean 'mp'?" in msg
    assert "threads" in msg  # the registry listing rides along


def test_unknown_backend_from_env_raises(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "thredas")
    with pytest.raises(MPIError, match="did you mean 'threads'"):
        resolve_name(None)


def test_get_backend_caches_instances():
    assert get_backend("threads") is get_backend("threads")


def test_register_replaces_and_invalidates_cache():
    class Fake(ExecBackend):
        name = "fake-backend"

    try:
        register("fake-backend", Fake)
        first = get_backend("fake-backend")
        assert isinstance(first, Fake)
        register("fake-backend", Fake)  # re-register drops the instance
        assert get_backend("fake-backend") is not first
    finally:
        from repro import exec as E
        E._FACTORIES.pop("fake-backend", None)
        E._INSTANCES.pop("fake-backend", None)


def test_require_available_names_usable_backends():
    class Broken(ExecBackend):
        name = "broken"

        def available(self):
            return False, "no such transport here"

    with pytest.raises(BackendUnavailableError) as excinfo:
        Broken().require_available()
    msg = str(excinfo.value)
    assert "no such transport here" in msg
    assert "threads" in msg  # points at what *does* work


def test_mpiexec_unavailable_without_mpi4py():
    backend = get_backend("mpiexec")
    ok, reason = backend.available()
    if ok:  # environment actually has mpi4py: nothing to assert here
        pytest.skip("mpi4py is importable in this environment")
    assert "mpi4py" in reason
    with pytest.raises(BackendUnavailableError, match="mpi4py"):
        backend.require_available()
