"""Shared-memory plumbing: ShmArray allocation, message encode/decode."""

import numpy as np
import pytest

from repro.exec import shm
from repro.samr import dataobject as dobj


# ------------------------------------------------------------- allocation
def test_shm_array_behaves_like_ndarray():
    arr = shm.shm_full((3, 4), 2.5)
    assert isinstance(arr, shm.ShmArray)
    assert arr.shape == (3, 4) and arr.dtype == np.float64
    np.testing.assert_array_equal(arr, np.full((3, 4), 2.5))
    arr[1, 2] = -1.0
    assert arr.sum() == 2.5 * 12 - 2.5 - 1.0
    assert arr.segment_name  # backed by a live named segment


def test_views_share_the_segment():
    arr = shm.shm_empty((8,))
    arr[:] = np.arange(8.0)
    view = arr[2:6]
    assert isinstance(view, shm.ShmArray)
    assert view.segment_name == arr.segment_name
    view[:] = 0.0
    assert arr[3] == 0.0  # genuinely one buffer


def test_pickling_plainifies():
    import pickle

    arr = shm.shm_full((5,), 7.0)
    clone = pickle.loads(pickle.dumps(arr))
    np.testing.assert_array_equal(clone, arr)
    # the round-tripped array is ordinary in-band storage
    assert not isinstance(clone, shm.ShmArray) \
        or clone.segment_name is None


def test_segment_released_when_last_view_dies():
    arr = shm.shm_empty((4,))
    name = arr.segment_name
    assert name in shm._OWNED
    del arr
    assert name not in shm._OWNED


def test_release_owned_is_idempotent():
    arr = shm.shm_empty((4,))
    name = arr.segment_name
    shm.release_owned()
    assert name not in shm._OWNED
    shm.release_owned()  # second call: nothing to do, no raise
    del arr  # finalizer must notice the explicit release and stay quiet


def test_dataobject_allocator_hook():
    try:
        dobj.set_array_allocator(shm.shm_allocator)
        arr = dobj._allocate((2, 3), 1.5, np.float64)
        assert isinstance(arr, shm.ShmArray)
        np.testing.assert_array_equal(arr, np.full((2, 3), 1.5))
    finally:
        dobj.set_array_allocator(None)
    plain = dobj._allocate((2, 3), 1.5, np.float64)
    assert not isinstance(plain, shm.ShmArray)


# ---------------------------------------------------------------- messages
def test_small_message_stays_in_band():
    env, nbytes = shm.encode_message({"x": 1, "arr": np.arange(4.0)})
    assert env[0] == "pickle"
    assert nbytes == len(env[1])
    out = shm.decode_message(env)
    assert out["x"] == 1
    np.testing.assert_array_equal(out["arr"], np.arange(4.0))


def test_large_array_rides_shared_memory():
    payload = {"a": np.arange(4096.0), "b": np.ones((64, 64))}
    env, nbytes = shm.encode_message(payload)
    assert env[0] == "shm"
    assert nbytes >= 4096 * 8 + 64 * 64 * 8  # buffers + pickle stream
    out = shm.decode_message(env)
    np.testing.assert_array_equal(out["a"], payload["a"])
    np.testing.assert_array_equal(out["b"], payload["b"])
    # decoded arrays are views over one mapping; writing one must not
    # corrupt the other (layout offsets are disjoint)
    out["a"][:] = 0.0
    np.testing.assert_array_equal(out["b"], payload["b"])


def test_threshold_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "10")
    assert shm.min_shm_bytes() == 10
    env, _ = shm.encode_message(np.arange(4.0))  # 32 bytes > 10
    assert env[0] == "shm"
    np.testing.assert_array_equal(shm.decode_message(env), np.arange(4.0))
    monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "not-a-number")
    assert shm.min_shm_bytes() == shm.DEFAULT_MIN_SHM_BYTES


def test_discard_frees_an_unconsumed_segment():
    from multiprocessing import shared_memory

    env, _ = shm.encode_message(np.arange(4096.0))
    assert env[0] == "shm"
    shm.discard_message(env)
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=env[2])
    shm.discard_message(env)  # already gone: silent
    shm.discard_message(("pickle", b"x"))  # in-band: nothing to free
