"""App-level checkpoint artifacts: versioning, shards, validity, pruning."""

import json
import os

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.resilience import checkpoint as app_ckpt
from repro.samr import Box, DataObject, Hierarchy
from repro.samr import checkpoint as samr_ckpt


def build_state():
    h = Hierarchy((16, 16), extent=(2.0, 2.0), ratio=2, max_levels=2,
                  nghost=2, nranks=1)
    h.build_base_level()
    h.set_level_boxes(1, [Box((8, 8), (23, 23))])
    d = DataObject("flow", h, nvar=2, var_names=["T", "u"])
    rng = np.random.default_rng(3)
    for p in d.owned_patches():
        d.array(p)[...] = rng.random(d.array(p).shape)
    return h, d


def test_app_roundtrip_with_mesh(tmp_path):
    h, d = build_state()
    prefix = str(tmp_path / "app")
    states = {"Integrator": {"nfe": 17, "nsteps": 4, "last_stages": 6}}
    app_ckpt.save_app_checkpoint(prefix, 5, 0.25, hierarchy=h,
                                 dataobjs=[d], component_states=states,
                                 clock=1.5, extras={"note": "hi"})
    ck = app_ckpt.load_app_checkpoint(prefix, 5)
    assert (ck.step, ck.t, ck.clock) == (5, 0.25, 1.5)
    assert ck.component_states == states
    assert ck.extras == {"note": "hi"}
    assert ck.hierarchy.total_cells() == h.total_cells()
    for p in h.all_patches():
        np.testing.assert_array_equal(ck.dataobjs["flow"].array(p.id),
                                      d.array(p.id))


def test_meshless_roundtrip(tmp_path):
    prefix = str(tmp_path / "app")
    app_ckpt.save_app_checkpoint(
        prefix, 2, 0.5, component_states={},
        extras={"y": [1.0, 2.0], "nfe": 3})
    ck = app_ckpt.load_app_checkpoint(prefix, 2)
    assert ck.hierarchy is None
    assert ck.dataobjs == {}
    assert ck.extras == {"y": [1.0, 2.0], "nfe": 3}


def test_raw_samr_checkpoint_is_rejected(tmp_path):
    h, d = build_state()
    base = app_ckpt.step_prefix(str(tmp_path / "app"), 1)
    samr_ckpt.save_checkpoint(base, h, [d])
    with pytest.raises(CheckpointError, match="no app manifest"):
        app_ckpt.load_app_checkpoint(str(tmp_path / "app"), 1)


def test_app_version_mismatch_raises(tmp_path):
    h, d = build_state()
    base = app_ckpt.step_prefix(str(tmp_path / "app"), 1)
    samr_ckpt.save_checkpoint(base, h, [d],
                              extra={"app_version": 99, "step": 1})
    with pytest.raises(CheckpointError, match="version 99"):
        app_ckpt.load_app_checkpoint(str(tmp_path / "app"), 1)


def test_missing_rank_shard_raises(tmp_path):
    h, d = build_state()
    prefix = str(tmp_path / "app")
    app_ckpt.save_app_checkpoint(prefix, 1, 0.0, hierarchy=h,
                                 dataobjs=[d], rank=0, nranks=2)
    with pytest.raises(CheckpointError, match="rank 1"):
        app_ckpt.load_app_checkpoint(prefix, 1, rank=1)


def test_latest_valid_step_skips_incomplete_shards(tmp_path):
    h, d = build_state()
    prefix = str(tmp_path / "app")
    for step in (1, 2):
        for rank in (0, 1):
            app_ckpt.save_app_checkpoint(prefix, step, 0.1 * step,
                                         hierarchy=h, dataobjs=[d],
                                         rank=rank, nranks=2)
    # step 3: only rank 0 made it before the "crash"
    app_ckpt.save_app_checkpoint(prefix, 3, 0.3, hierarchy=h,
                                 dataobjs=[d], rank=0, nranks=2)
    assert app_ckpt.checkpoint_steps(prefix) == [1, 2, 3]
    assert not app_ckpt.is_valid_step(prefix, 3, nranks=2)
    assert app_ckpt.is_valid_step(prefix, 2, nranks=2)
    assert app_ckpt.latest_valid_step(prefix, nranks=2) == 2


def test_validity_autodetects_shard_count(tmp_path):
    """With nranks unspecified, the cohort size comes from the shard
    manifests — an incomplete sharded step is still caught."""
    h, d = build_state()
    prefix = str(tmp_path / "app")
    for rank in (0, 1):
        app_ckpt.save_app_checkpoint(prefix, 1, 0.1, hierarchy=h,
                                     dataobjs=[d], rank=rank, nranks=2)
    app_ckpt.save_app_checkpoint(prefix, 2, 0.2, hierarchy=h,
                                 dataobjs=[d], rank=0, nranks=2)
    assert app_ckpt.is_valid_step(prefix, 1)      # both shards of 2
    assert not app_ckpt.is_valid_step(prefix, 2)  # manifest says 2, has 1
    assert app_ckpt.latest_valid_step(prefix) == 1


def test_corrupt_manifest_invalidates_step(tmp_path):
    h, d = build_state()
    prefix = str(tmp_path / "app")
    path = app_ckpt.save_app_checkpoint(prefix, 1, 0.0, hierarchy=h,
                                        dataobjs=[d])
    with open(path, "wb") as fh:
        fh.write(b"not an npz")
    assert not app_ckpt.is_valid_step(prefix, 1)
    assert app_ckpt.latest_valid_step(prefix) is None


def test_prune_keeps_newest_steps_per_rank(tmp_path):
    h, d = build_state()
    prefix = str(tmp_path / "app")
    for step in range(1, 6):
        app_ckpt.save_app_checkpoint(prefix, step, 0.0, hierarchy=h,
                                     dataobjs=[d])
    removed = app_ckpt.prune_old_steps(prefix, keep=2)
    assert len(removed) == 3
    assert app_ckpt.checkpoint_steps(prefix) == [4, 5]
    for path in removed:
        assert not os.path.exists(path)


def test_manifest_is_json_readable(tmp_path):
    """The artifact stays a plain SAMR npz any tool can open."""
    h, d = build_state()
    prefix = str(tmp_path / "app")
    path = app_ckpt.save_app_checkpoint(prefix, 7, 1.0, hierarchy=h,
                                        dataobjs=[d])
    with np.load(path) as blob:
        manifest = json.loads(bytes(blob["__manifest__"]).decode())
    assert manifest["extra"]["app_version"] == app_ckpt.APP_FORMAT_VERSION
    assert manifest["extra"]["step"] == 7
