"""The ``python -m repro.resilience`` CLI."""

import json
import os

import pytest

from repro.resilience import faults
from repro.resilience.__main__ import main, parse_fault_spec


def test_parse_fault_spec_typed_fields():
    plan = parse_fault_spec("kill_rank=1,kill_step=3,drop_prob=0.25,seed=7")
    assert plan.kill_rank == 1
    assert plan.kill_step == 3
    assert plan.drop_prob == 0.25
    assert plan.seed == 7
    assert plan.inject_method == ""


def test_parse_fault_spec_rejects_unknown_key():
    with pytest.raises(ValueError, match="unknown fault field"):
        parse_fault_spec("explode=1")


def _example_rc():
    here = os.path.dirname(__file__)
    return os.path.join(here, os.pardir, os.pardir, "examples",
                        "reaction_diffusion.rc")


def test_run_with_injected_kill_exits_zero(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)  # the example writes flame_ck.* in cwd
    metrics = tmp_path / "metrics.json"
    code = main(["run", _example_rc(),
                 "--fault", "kill_rank=0,kill_step=3",
                 "--metrics", str(metrics)])
    assert code == 0
    assert faults.on is False  # CLI disarms the plan on the way out
    data = json.loads(metrics.read_text())
    assert data["ok"] is True
    assert data["restarts"] == 1
    assert data["injected_faults"]["kills"] == 1
    assert data["results"][0]["n_steps"] == 6
    out = capsys.readouterr().out
    assert "ok:" in out and "1 restart(s)" in out


def test_run_failure_exits_one(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["run", _example_rc(), "--retries", "0",
                 "--fault", "kill_rank=0,kill_step=2,kill_max_fires=99"])
    assert code == 1


def test_run_bad_fault_spec_exits_two(tmp_path, capsys):
    code = main(["run", _example_rc(), "--fault", "nonsense"])
    assert code == 2
    assert "bad fault spec" in capsys.readouterr().err


def test_run_missing_script_exits_two(capsys):
    code = main(["run", "/nonexistent.rc"])
    assert code == 2
    assert "cannot read" in capsys.readouterr().err


def test_inspect_lists_steps_and_validity(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["run", _example_rc()]) == 0
    capsys.readouterr()
    # default --nranks 0 reads the cohort size from the shard manifests
    code = main(["inspect", str(tmp_path / "flame_ck")])
    assert code == 0
    out = capsys.readouterr().out
    assert "valid" in out and "INVALID" not in out and "<- latest" in out
    # an explicit shard count asserts the same thing
    assert main(["inspect", str(tmp_path / "flame_ck"),
                 "--nranks", "1"]) == 0


def test_inspect_empty_prefix_exits_one(tmp_path, capsys):
    code = main(["inspect", str(tmp_path / "nothing")])
    assert code == 1
    assert "no checkpoints" in capsys.readouterr().out


def test_metrics_json_shared_schema(tmp_path, monkeypatch):
    """--metrics emits the repro.obs shared metrics schema (version 1)
    next to the legacy top-level keys: a flat record list any scraper of
    REPRO_METRICS_PATH snapshots can also consume."""
    monkeypatch.chdir(tmp_path)
    metrics = tmp_path / "metrics.json"
    assert main(["run", _example_rc(),
                 "--fault", "kill_rank=0,kill_step=3",
                 "--metrics", str(metrics)]) == 0
    data = json.loads(metrics.read_text())
    assert data["schema"] == 1
    records = {(m["name"], tuple(sorted((m.get("labels") or {}).items()))):
               m for m in data["metrics"]}
    assert records[("resilience.restarts", ())]["type"] == "counter"
    assert records[("resilience.restarts", ())]["value"] == 1.0
    assert records[("resilience.ok", ())]["type"] == "gauge"
    assert records[("resilience.ok", ())]["value"] == 1.0
    kills = records[("resilience.injected_faults", (("kind", "kills"),))]
    assert kills["type"] == "counter" and kills["value"] == 1.0
    # every record is self-describing
    for m in data["metrics"]:
        assert {"name", "type"} <= set(m)
