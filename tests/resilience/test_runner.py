"""The supervised runner: detect, restart, bound retries."""

import pytest

from repro.analysis.wiring import default_classes
from repro.resilience import faults
from repro.resilience.runner import supervise, with_resume

FLAME_RC = """\
instantiate GrACEComponent AMR_Mesh
instantiate InitialCondition InitialCondition
instantiate ThermoChemistry ReactionTerms
instantiate CvodeComponent CvodeSolver
instantiate ImplicitIntegrator ImplicitIntegrator
instantiate ExplicitIntegrator ExplicitIntegrator
instantiate DiffusionPhysics DiffusionPhysics
instantiate DRFMComponent DRFM
instantiate MaxDiffCoeffEvaluator MaxDiffCoeff
instantiate ErrorEstAndRegrid ErrEstAndRegrid
instantiate StatisticsComponent Statistics
instantiate ReactionDiffusionDriver Driver
parameter AMR_Mesh nx 16
parameter AMR_Mesh ny 16
parameter AMR_Mesh x_extent 0.01
parameter AMR_Mesh y_extent 0.01
parameter InitialCondition x_extent 0.01
parameter InitialCondition y_extent 0.01
parameter InitialCondition spot_radius 0.0008
parameter ImplicitIntegrator mode batch
parameter Driver n_steps 5
parameter Driver dt 1e-7
parameter Driver checkpoint_path {ck}
parameter Driver checkpoint_interval 1
connect InitialCondition chem ReactionTerms chemistry
connect CvodeSolver rhs ReactionTerms source
connect ImplicitIntegrator solver CvodeSolver solver
connect ImplicitIntegrator chem ReactionTerms chemistry
connect ImplicitIntegrator data AMR_Mesh data
connect DRFM chem ReactionTerms chemistry
connect DiffusionPhysics transport DRFM transport
connect DiffusionPhysics chem ReactionTerms chemistry
connect DiffusionPhysics mesh AMR_Mesh mesh
connect MaxDiffCoeff mesh AMR_Mesh mesh
connect MaxDiffCoeff data AMR_Mesh data
connect MaxDiffCoeff transport DRFM transport
connect MaxDiffCoeff chem ReactionTerms chemistry
connect ExplicitIntegrator rhs DiffusionPhysics rhs
connect ExplicitIntegrator bound MaxDiffCoeff bound
connect ExplicitIntegrator mesh AMR_Mesh mesh
connect ExplicitIntegrator data AMR_Mesh data
connect ErrEstAndRegrid mesh AMR_Mesh mesh
connect ErrEstAndRegrid data AMR_Mesh data
connect Driver mesh AMR_Mesh mesh
connect Driver data AMR_Mesh data
connect Driver ic InitialCondition ic
connect Driver explicit ExplicitIntegrator integrator
connect Driver implicit ImplicitIntegrator integrator
connect Driver regrid ErrEstAndRegrid regrid
connect Driver chem ReactionTerms chemistry
connect Driver stats Statistics stats
go Driver
"""


def flame_rc(tmp_path):
    return FLAME_RC.format(ck=str(tmp_path / "ck"))


def test_with_resume_injects_before_go():
    text = "instantiate A a\ngo a\n"
    lines = with_resume(text).splitlines()
    assert lines == ["instantiate A a", "parameter a resume 1", "go a"]


def test_clean_run_needs_no_restart(tmp_path):
    report = supervise(flame_rc(tmp_path), default_classes(), retries=2)
    assert report.ok
    assert report.attempts == 1
    assert report.restarts == 0
    assert report.results[0]["n_steps"] == 5


def test_injected_kill_is_survived_via_restart(tmp_path):
    faults.configure(faults.FaultPlan(kill_rank=0, kill_step=3))
    report = supervise(flame_rc(tmp_path), default_classes(), retries=2)
    assert report.ok
    assert report.attempts == 2
    assert report.restarts == 1
    assert report.injected["kills"] == 1
    assert len(report.failures) == 1
    assert "InjectedFault" in report.failures[0] \
        or "RankFailure" in report.failures[0]
    # the resumed run finished the full schedule
    assert report.results[0]["n_steps"] == 5


def test_scmd_rank_kill_is_survived(tmp_path):
    from repro.mpi import ZERO_COST
    faults.configure(faults.FaultPlan(kill_rank=1, kill_step=2))
    report = supervise(flame_rc(tmp_path), default_classes(), nprocs=2,
                       retries=2, machine=ZERO_COST)
    assert report.ok
    assert report.restarts == 1
    assert len(report.results) == 2


def test_retries_exhausted_reports_failure(tmp_path):
    # no checkpoints: every restart begins at step 1 — and the kill
    # re-fires each time it crosses step 2
    text = "\n".join(line for line in flame_rc(tmp_path).splitlines()
                     if "checkpoint" not in line)
    faults.configure(faults.FaultPlan(kill_rank=0, kill_step=2,
                                      kill_max_fires=10**9))
    report = supervise(text, default_classes(), retries=2)
    assert not report.ok
    assert report.attempts == 3
    assert report.restarts == 2
    assert len(report.failures) == 3


def test_bad_script_fails_fast():
    from repro.errors import ScriptError
    with pytest.raises(ScriptError):
        supervise("frobnicate X y\n", default_classes())


class TestRunSupervised:
    """The in-process entry point wrapping supervise()."""

    def test_clean_run_returns_results_and_metrics(self, tmp_path):
        from repro.resilience.runner import run_supervised
        result = run_supervised(flame_rc(tmp_path), retries=0)
        assert result.ok
        assert result.attempts == 1 and result.restarts == 0
        assert result.results[0]["n_steps"] == 5
        doc = result.metrics()
        assert doc["schema"] == 1 and doc["ok"] is True
        names = {r["name"] for r in doc["metrics"]}
        assert {"resilience.attempts", "resilience.restarts",
                "resilience.ok"} <= names

    def test_fault_spec_string_is_armed_and_disarmed(self, tmp_path):
        from repro.resilience.runner import run_supervised
        result = run_supervised(flame_rc(tmp_path), retries=2,
                                fault="kill_rank=0,kill_step=3,"
                                      "kill_max_fires=1")
        assert result.ok
        assert result.restarts == 1
        assert result.injected["kills"] == 1
        assert faults.on is False  # disarmed on the way out

    def test_disarms_even_when_script_is_bad(self):
        from repro.errors import ScriptError
        from repro.resilience.runner import run_supervised
        with pytest.raises(ScriptError):
            run_supervised("frobnicate X y\n", fault="kill_rank=0")
        assert faults.on is False
