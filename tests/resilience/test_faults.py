"""Deterministic fault injection: flag, hooks, and hot-path neutrality."""

import numpy as np
import pytest

from repro.cca.component import Component
from repro.cca.framework import Framework
from repro.cca.port import Port
from repro.errors import InjectedFault, ResilienceError
from repro.mpi import mpirun
from repro.resilience import faults


def test_off_by_default():
    assert faults.on is False
    assert faults.plan() is None


def test_configure_and_deactivate_toggle_flag():
    faults.configure(faults.FaultPlan(kill_rank=0, kill_step=2))
    assert faults.on is True
    assert faults.plan().kill_step == 2
    faults.deactivate()
    assert faults.on is False
    assert faults.plan() is None


def test_injected_fault_is_a_resilience_error():
    assert issubclass(InjectedFault, ResilienceError)


def test_step_hook_kills_the_configured_rank_step_once():
    faults.configure(faults.FaultPlan(kill_rank=1, kill_step=3))
    faults.step_hook(1, 2)  # wrong step
    faults.step_hook(0, 3)  # wrong rank
    with pytest.raises(InjectedFault):
        faults.step_hook(1, 3)
    # kill_max_fires=1: a restarted timeline re-crossing step 3 survives
    faults.step_hook(1, 3)
    assert faults.injected_counts()["kills"] == 1


def test_send_fates_are_seeded_and_drop_bounded():
    faults.configure(faults.FaultPlan(drop_prob=0.5, drop_max=3, seed=42))
    fates1 = [faults.on_send(0, 1, 0) for _ in range(20)]
    faults.configure(faults.FaultPlan(drop_prob=0.5, drop_max=3, seed=42))
    fates2 = [faults.on_send(0, 1, 0) for _ in range(20)]
    assert fates1 == fates2  # same seed, same ordinals -> same fates
    assert 0 < fates1.count(faults.DROP) <= 3
    # a different seed picks a different (uncapped) drop pattern
    faults.configure(faults.FaultPlan(drop_prob=0.5, seed=42))
    a = [faults.on_send(0, 1, 0) is faults.DROP for _ in range(64)]
    faults.configure(faults.FaultPlan(drop_prob=0.5, seed=43))
    b = [faults.on_send(0, 1, 0) is faults.DROP for _ in range(64)]
    assert a != b


def test_comm_drops_the_doomed_send():
    faults.configure(faults.FaultPlan(drop_prob=1.0, drop_max=1, seed=1))

    def main(comm):
        if comm.rank == 0:
            comm.send("first", 1, tag=1)
            comm.send("second", 1, tag=2)
            return None
        return comm.recv(source=0)

    results = mpirun(2, main)
    assert results[1] == "second"
    assert faults.injected_counts()["drops"] == 1


def test_comm_delay_inflates_virtual_flight_time():
    faults.configure(faults.FaultPlan(delay_prob=1.0, delay_seconds=5.0))

    def main(comm):
        if comm.rank == 0:
            comm.send(np.arange(4.0), 1)
            return 0.0
        comm.recv(source=0)
        return comm.clock

    results = mpirun(2, main)
    assert results[1] >= 5.0
    assert faults.injected_counts()["delays"] == 1


class _EchoPort(Port):
    def echo(self, x):
        return x


class EchoProvider(Component):
    def set_services(self, services):
        self.services = services
        services.add_provides_port(_EchoPort(), "out")


class EchoUser(Component):
    def set_services(self, services):
        self.services = services
        services.register_uses_port("in", "_EchoPort")


def _echo_assembly():
    fw = Framework()
    fw.registry.register_many([EchoProvider, EchoUser])
    fw.instantiate("EchoProvider", "P")
    fw.instantiate("EchoUser", "U")
    fw.connect("U", "in", "P", "out")
    return fw


def test_port_call_injection_fires_on_the_nth_call():
    fw = _echo_assembly()
    faults.configure(faults.FaultPlan(inject_method="P:out.echo",
                                      inject_call=2))
    port = fw.services_of("U").get_port("in")
    assert port.echo(1) == 1
    with pytest.raises(InjectedFault):
        port.echo(2)
    assert port.echo(3) == 3  # inject_max_fires=1: later calls pass
    assert faults.injected_counts()["method_exceptions"] == 1


def _strip_sanitizer(port):
    # under REPRO_TSAN=1 get_port adds a sanitizer proxy even with
    # faults off; these tests only assert the *fault* layer is absent
    from repro.mpi import sanitizer

    if isinstance(port, sanitizer.SanitizerPortProxy):
        return object.__getattribute__(port, "_target")
    return port


def test_port_wrap_only_for_targeted_label():
    fw = _echo_assembly()
    faults.configure(faults.FaultPlan(inject_method="Other:out.echo"))
    port = _strip_sanitizer(fw.services_of("U").get_port("in"))
    assert isinstance(port, _EchoPort)  # untargeted port stays raw


def test_disabled_injection_returns_raw_port():
    fw = _echo_assembly()
    port = _strip_sanitizer(fw.services_of("U").get_port("in"))
    assert isinstance(port, _EchoPort)  # no proxy when faults.on is False
