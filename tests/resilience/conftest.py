"""Shared fixtures: fault injection must never leak between tests."""

import pytest

from repro.resilience import faults


@pytest.fixture(autouse=True)
def _faults_off():
    yield
    faults.deactivate()
