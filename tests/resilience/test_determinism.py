"""The determinism proof: crash + restore == uninterrupted, bit for bit."""

import numpy as np
import pytest

from repro.apps.ignition0d import build_ignition0d
from repro.apps.reaction_diffusion import build_reaction_diffusion
from repro.cca.framework import Framework
from repro.errors import InjectedFault
from repro.mpi import ZERO_COST, mpirun
from repro.mpi.launcher import RankFailure
from repro.resilience import faults

FLAME_KW = dict(nx=16, ny=16, n_steps=6, dt=1e-7, max_levels=2,
                regrid_interval=2, chemistry_mode="batch",
                initial_regrids=1)


def _flame_framework(comm=None, ck="", resume=False, **overrides):
    fw = Framework(comm=comm)
    build_reaction_diffusion(fw, **{**FLAME_KW, **overrides})
    if ck:
        fw.set_parameter("Driver", "checkpoint_path", ck)
        fw.set_parameter("Driver", "checkpoint_interval", 1)
    if resume:
        fw.set_parameter("Driver", "resume", 1)
    return fw


def _flame_state(fw):
    mesh = fw.get_component("AMR_Mesh")
    dobj = mesh.data("flow")
    arrays = {p.id: np.array(dobj.array(p)) for p in dobj.owned_patches()}
    owners = {p.id: p.owner
              for p in mesh.require_hierarchy().all_patches()}
    return arrays, owners


def test_flame_serial_crash_restore_is_bit_identical(tmp_path):
    fw1 = _flame_framework()
    res1 = fw1.go("Driver")
    arrays1, owners1 = _flame_state(fw1)

    ck = str(tmp_path / "ck")
    # crashing timeline: checkpoint every step, injected kill at step 3
    faults.configure(faults.FaultPlan(kill_rank=0, kill_step=3))
    fw2 = _flame_framework(ck=ck)
    with pytest.raises(InjectedFault):
        fw2.go("Driver")
    # restart (same process, kill_max_fires=1 spent): run to completion
    fw3 = _flame_framework(ck=ck, resume=True)
    res3 = fw3.go("Driver")
    arrays3, owners3 = _flame_state(fw3)

    assert owners3 == owners1
    assert set(arrays3) == set(arrays1)
    for pid in arrays1:
        assert np.array_equal(arrays3[pid], arrays1[pid])
    assert res3["t_final"] == res1["t_final"]
    assert res3["history_T_max"] == res1["history_T_max"]
    assert res3["total_cells"] == res1["total_cells"]


def test_flame_scmd_4rank_crash_restore_is_bit_identical(tmp_path):
    def run(ck="", resume=False):
        def main(comm):
            fw = _flame_framework(comm=comm, ck=ck, resume=resume)
            fw.go("Driver")
            return _flame_state(fw)
        return mpirun(4, main, machine=ZERO_COST)

    reference = run()

    ck = str(tmp_path / "ck")
    faults.configure(faults.FaultPlan(kill_rank=2, kill_step=3))
    with pytest.raises(RankFailure):
        run(ck=ck)
    restored = run(ck=ck, resume=True)

    for rank in range(4):
        arrays_ref, owners_ref = reference[rank]
        arrays_new, owners_new = restored[rank]
        assert owners_new == owners_ref
        assert set(arrays_new) == set(arrays_ref)
        for pid in arrays_ref:
            assert np.array_equal(arrays_new[pid], arrays_ref[pid])


def test_ignition0d_resume_is_bit_identical(tmp_path):
    def run(ck="", resume=False, n_output=8):
        fw = Framework()
        build_ignition0d(fw, t_end=2e-4)
        fw.set_parameter("Driver", "n_output", n_output)
        if ck:
            fw.set_parameter("Driver", "checkpoint_path", ck)
            fw.set_parameter("Driver", "checkpoint_interval", 1)
        if resume:
            fw.set_parameter("Driver", "resume", 1)
        return fw.go("Driver")

    res1 = run()

    ck = str(tmp_path / "ck")
    faults.configure(faults.FaultPlan(kill_rank=0, kill_step=4))
    with pytest.raises(InjectedFault):
        run(ck=ck)
    res3 = run(ck=ck, resume=True)

    assert res3["T_final"] == res1["T_final"]
    assert res3["P_final"] == res1["P_final"]
    assert np.array_equal(res3["Y_final"], res1["Y_final"])
    assert res3["nfe"] == res1["nfe"]
    assert res3["history_T"] == res1["history_T"]
