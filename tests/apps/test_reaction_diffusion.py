"""Integration tests for the 2D reaction-diffusion flame (paper §4.2)."""

import numpy as np
import pytest

from repro.apps import assembly_table, run_reaction_diffusion
from repro.cca import run_scmd
from repro.mpi import ZERO_COST


def small_run(**kw):
    args = dict(nx=16, ny=16, max_levels=1, n_steps=3, dt=1e-7,
                chemistry_mode="batch")
    args.update(kw)
    return run_reaction_diffusion(**args)


def test_runs_and_reports(capsys=None):
    res = small_run()
    assert res["n_steps"] == 3
    assert res["t_final"] == pytest.approx(3e-7)
    assert res["total_cells"] == 256
    assert 300.0 < res["T_max"] < 1500.0
    assert np.isfinite(res["T_max"])


def test_diffusion_only_cools_hotspots():
    """With chemistry off the hot spots can only spread and cool."""
    res = small_run(chemistry_on=False, n_steps=5, dt=1e-6)
    assert res["T_max"] < 1400.0


def test_chemistry_changes_solution_only_slightly_in_induction():
    """During early induction (0.3 us) heat release is negligible — the
    chemistry branch must engage (results differ) without changing the
    thermal field materially (initiation is mildly endothermic)."""
    cold = small_run(chemistry_on=False, n_steps=3, dt=1e-7)
    hot = small_run(chemistry_on=True, n_steps=3, dt=1e-7)
    assert hot["T_max"] != cold["T_max"]
    assert hot["T_max"] == pytest.approx(cold["T_max"], abs=1.0)


def test_amr_refines_hotspots():
    res = small_run(max_levels=2, regrid_interval=2, n_steps=2,
                    initial_regrids=1, threshold=0.2)
    assert res["nlevels"] == 2
    assert res["total_cells"] > 256


def test_per_cell_cvode_mode_matches_batch_loosely():
    """The two chemistry modes must agree during early induction (weak
    coupling, short dt)."""
    a = small_run(chemistry_mode="batch", n_steps=2)
    b = small_run(chemistry_mode="cvode", n_steps=2)
    assert a["T_max"] == pytest.approx(b["T_max"], rel=5e-3)


def test_scmd_parallel_matches_serial():
    """2-rank SCMD run must agree with the serial run (same physics,
    distributed mesh)."""

    def main(comm):
        return run_reaction_diffusion(
            comm=comm, nx=16, ny=16, max_levels=1, n_steps=2, dt=1e-7,
            chemistry_mode="batch")

    from repro.mpi import mpirun

    par = mpirun(2, main, machine=ZERO_COST)
    ser = small_run(n_steps=2)
    for res in par:
        assert res["T_max"] == pytest.approx(ser["T_max"], rel=1e-10)
        assert res["total_cells"] == ser["total_cells"]


def test_assembly_table_matches_paper_table2():
    table = assembly_table("reaction_diffusion")
    assert table["Mesh"] == ["GrACEComponent"]
    assert "ExplicitIntegrator" in table["Explicit Integration"]
    assert "DRFMComponent" in table["Explicit Integration"]
    assert table["Adaptors"] == ["ImplicitIntegrator"]


def test_component_reuse_cvode_thermochem():
    """Conclusion item 1: CvodeComponent and ThermoChemistry are reused
    across the 0D and 2D assemblies — same classes, different instances."""
    from repro.apps.ignition0d import IGNITION0D_COMPONENTS
    from repro.apps.reaction_diffusion import RD_COMPONENTS
    from repro.components import CvodeComponent, ThermoChemistry

    for cls in (CvodeComponent, ThermoChemistry):
        assert cls in IGNITION0D_COMPONENTS
        assert cls in RD_COMPONENTS
