"""Tests for the assembly metadata: scripts, tables, graph exports."""

import pytest

from repro.apps import IGNITION0D_SCRIPT, assembly_table
from repro.apps.assemblies import format_assembly_table
from repro.cca import Framework, parse_script, to_dot, wiring_summary


def test_ignition_script_parses_cleanly():
    directives = parse_script(IGNITION0D_SCRIPT)
    verbs = [d.verb for d in directives]
    assert verbs.count("instantiate") == 7
    assert verbs.count("connect") == 10
    assert verbs[-1] == "go"
    # repository get-global lines precede instantiation (Ccaffeine style)
    assert verbs[0] == "repository"


def test_assembly_table_unknown_app():
    with pytest.raises(KeyError, match="unknown app"):
        assembly_table("navier_stokes_3d")


@pytest.mark.parametrize("app", ["ignition0d", "reaction_diffusion",
                                 "shock_interface"])
def test_format_assembly_table_renders_all_subsystems(app):
    text = format_assembly_table(app)
    for subsystem in ("Mesh", "Data Object", "Initial Condition",
                      "Explicit Integration", "Implicit Integration",
                      "Boundary Condition", "Database", "Adaptors"):
        assert subsystem in text


def test_assembly_table_is_a_copy():
    t = assembly_table("ignition0d")
    t["Mesh"] = ["corrupted"]
    assert assembly_table("ignition0d")["Mesh"] == ["N/A"]


def test_paper_instance_names_used_in_wiring():
    """The builders use the paper's own instance names (Fig 2/5 labels:
    AMR_Mesh, ErrEstAndRegrid, CvodeSolver, ReactionTerms, AMRMesh,
    ErrEstimator ...)."""
    from repro.apps.reaction_diffusion import build_reaction_diffusion
    from repro.apps.shock_interface import build_shock_interface

    fw = Framework()
    build_reaction_diffusion(fw)
    names = set(fw.instance_names())
    assert {"AMR_Mesh", "ErrEstAndRegrid", "CvodeSolver",
            "ReactionTerms"} <= names

    fw2 = Framework()
    build_shock_interface(fw2)
    names2 = set(fw2.instance_names())
    assert {"AMRMesh", "ErrEstimator", "GodunovFlux", "EFMFlux",
            "ConicalInterfaceIC"} <= names2


def test_every_assembly_has_no_dangling_required_ports():
    """All uses-ports the drivers exercise are connected; the only
    intentionally optional ones are GrACE's bc/balancer hooks."""
    from repro.apps.ignition0d import build_ignition0d
    from repro.apps.reaction_diffusion import build_reaction_diffusion
    from repro.apps.shock_interface import build_shock_interface

    optional = {"bc", "balancer"}
    for builder in (build_ignition0d, build_reaction_diffusion,
                    build_shock_interface):
        fw = Framework()
        builder(fw)
        wired = {(u, p) for (u, p) in fw.connections()}
        for name in fw.instance_names():
            services = fw.services_of(name)
            for port_name in services.uses:
                if port_name in optional:
                    continue
                assert (name, port_name) in wired, \
                    f"{builder.__name__}: {name}.{port_name} dangling"


def test_dot_export_of_each_assembly():
    from repro.apps.ignition0d import build_ignition0d

    fw = Framework()
    build_ignition0d(fw)
    dot = to_dot(fw, title="fig1")
    assert '"CvodeComponent" -> "problemModeler"' in dot
    summary = wiring_summary(fw)
    assert summary["connections"] == 10
