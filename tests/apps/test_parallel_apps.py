"""SCMD parallel runs of the full applications: parallel == serial."""

import numpy as np
import pytest

from repro.apps import run_reaction_diffusion, run_shock_interface
from repro.mpi import ZERO_COST, CPLANT, mpirun


def test_shock_interface_parallel_matches_serial():
    kwargs = dict(nx=32, ny=16, max_levels=1, t_end_over_tau=0.5,
                  regrid_interval=0)

    def main(comm):
        res = run_shock_interface(comm=comm, **kwargs)
        return res["circulation_min"], res["steps"]

    ser = run_shock_interface(**kwargs)
    par = mpirun(2, main, machine=ZERO_COST)
    for circ, steps in par:
        assert steps == ser["steps"]
        assert circ == pytest.approx(ser["circulation_min"], rel=1e-9)


def test_shock_interface_amr_parallel_matches_serial():
    kwargs = dict(nx=32, ny=16, max_levels=2, t_end_over_tau=0.4,
                  regrid_interval=3, initial_regrids=1)

    def main(comm):
        res = run_shock_interface(comm=comm, **kwargs)
        return res["circulation_min"], res["total_cells"]

    ser = run_shock_interface(**kwargs)
    par = mpirun(2, main, machine=ZERO_COST)
    for circ, cells in par:
        assert cells == ser["total_cells"]
        assert circ == pytest.approx(ser["circulation_min"], rel=1e-6)


def test_reaction_diffusion_four_ranks():
    def main(comm):
        res = run_reaction_diffusion(
            comm=comm, nx=16, ny=16, max_levels=1, n_steps=2, dt=1e-7,
            chemistry_mode="batch")
        return res["T_max"]

    ser = run_reaction_diffusion(nx=16, ny=16, max_levels=1, n_steps=2,
                                 dt=1e-7, chemistry_mode="batch")
    par = mpirun(4, main, machine=ZERO_COST)
    for t in par:
        assert t == pytest.approx(ser["T_max"], rel=1e-10)


def test_virtual_time_sane_under_cplant_model():
    """Running under the CPlant model must produce positive, bounded
    virtual clocks that include communication time."""

    def main(comm):
        run_reaction_diffusion(
            comm=comm, nx=16, ny=16, max_levels=1, n_steps=2, dt=1e-7,
            chemistry_mode="batch")
        comm.barrier()
        return comm.clock

    clocks = mpirun(2, main, machine=CPLANT)
    assert all(0.0 < c < 120.0 for c in clocks)
    # barrier synchronizes the exit clocks
    assert abs(clocks[0] - clocks[1]) < 0.2 * max(clocks)
