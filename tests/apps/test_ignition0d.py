"""Integration tests for the 0D ignition application (paper §4.1)."""

import numpy as np
import pytest

from repro.apps import IGNITION0D_SCRIPT, assembly_table, run_ignition0d
from repro.apps.ignition0d import IGNITION0D_COMPONENTS, build_ignition0d
from repro.cca import Framework, run_script


@pytest.fixture(scope="module")
def ignition_result():
    return run_ignition0d(t_end=1e-3)


def test_ignites_to_high_temperature(ignition_result):
    """Stoichiometric H2-air from 1000 K / 1 atm must ignite well before
    1 ms (the paper integrates to 1 ms)."""
    res = ignition_result
    assert res["T0"] == 1000.0
    assert res["T_final"] > 2500.0


def test_pressure_rises_in_closed_vessel(ignition_result):
    """Rigid walls: P roughly tracks T (constant mass and volume)."""
    res = ignition_result
    assert res["P_final"] > 2.0 * res["P0"]
    # ideal gas at constant volume: P/P0 ~ (T/T0) * (W0/W)
    ratio_T = res["T_final"] / res["T0"]
    ratio_P = res["P_final"] / res["P0"]
    assert 0.5 * ratio_T < ratio_P < 1.5 * ratio_T


def test_mass_fractions_remain_physical(ignition_result):
    Y = ignition_result["Y_final"]
    assert Y.sum() == pytest.approx(1.0, abs=1e-6)
    assert Y.min() > -1e-8
    assert ignition_result["Y_H2O_final"] > 0.15  # product formed


def test_history_is_monotone_through_ignition(ignition_result):
    hist = ignition_result["history_T"]
    temps = [T for _, T in hist]
    assert temps[0] == 1000.0
    assert max(temps) == temps[-1] or max(temps) > 2500.0
    # ignition delay: a sharp rise somewhere inside the window
    jumps = [b - a for a, b in zip(temps, temps[1:])]
    assert max(jumps) > 300.0


def test_nfe_counted(ignition_result):
    assert ignition_result["nfe"] > 100


def test_script_assembly_matches_builder():
    """The rc-script path must produce the same physics as the
    programmatic builder (same assembly, same answer)."""
    fw = Framework()
    fw.registry.register_many(IGNITION0D_COMPONENTS)
    (script_result,) = run_script(fw, IGNITION0D_SCRIPT)
    builder_result = run_ignition0d(t_end=1e-3)
    assert script_result["T_final"] == pytest.approx(
        builder_result["T_final"], rel=1e-4)


def test_lite_mechanism_variant_runs():
    """The 8sp/5rxn mechanism drops the H2+M initiation channel, so a pure
    (radical-free) mixture stays chemically frozen — the run must complete
    cleanly with T pinned at T0."""
    res = run_ignition0d(mechanism="h2-lite", T0=1200.0, t_end=2e-4)
    assert np.isfinite(res["T_final"])
    assert res["T_final"] == pytest.approx(1200.0, abs=1.0)
    assert res["nfe"] > 0


def test_assembly_table_matches_paper_table1():
    table = assembly_table("ignition0d")
    assert table["Implicit Integration"] == ["CvodeComponent",
                                             "ThermoChemistry"]
    assert table["Mesh"] == ["N/A"]
    assert table["Adaptors"] == ["problemModeler"]


def test_assembly_describe_lists_connections():
    fw = Framework()
    build_ignition0d(fw)
    text = fw.describe()
    assert "CvodeComponent.rhs -> problemModeler.model" in text
    assert "problemModeler.dpdt -> dPdt.dpdt" in text
