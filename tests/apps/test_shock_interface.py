"""Integration tests for the shock-interface application (paper §4.3)."""

import numpy as np
import pytest

from repro.apps import assembly_table, run_shock_interface
from repro.cca import Framework
from repro.apps.shock_interface import build_shock_interface


def small_run(**kw):
    args = dict(nx=48, ny=24, max_levels=1, t_end_over_tau=0.6,
                regrid_interval=0)
    args.update(kw)
    return run_shock_interface(**args)


@pytest.fixture(scope="module")
def godunov_result():
    return small_run()


def test_runs_to_target_time(godunov_result):
    res = godunov_result
    assert res["steps"] > 10
    assert res["t_final"] > 0.0
    assert res["tau"] > 0.0


def test_baroclinic_circulation_is_negative(godunov_result):
    """The shock-interface interaction deposits negative circulation on
    the interface (the paper's Fig. 7 sign)."""
    res = godunov_result
    assert res["circulation_min"] < -0.01
    # circulation magnitude grows during traversal
    series = res["circulation"]
    early = [c for (tt, c) in series if tt < 0.2]
    late = [c for (tt, c) in series if tt > 0.4]
    assert min(late) < min(early) <= 0.01


def test_efm_flux_swap_runs_same_assembly(godunov_result):
    """Conclusion item 3: replace GodunovFlux by EFMFlux — identical
    assembly otherwise, same qualitative physics (no recompilation!)."""
    res = small_run(flux_scheme="efm")
    assert res["circulation_min"] < -0.01
    # EFM is more diffusive: deposited |Gamma| within a factor ~2
    ratio = res["circulation_min"] / godunov_result["circulation_min"]
    assert 0.4 < ratio < 2.0


def test_strong_shock_mach35_efm_survives():
    """The paper's strong-shock case (Mach ~= 3.5) runs with EFMFlux."""
    res = small_run(flux_scheme="efm", mach=3.5, t_end_over_tau=0.4)
    assert np.isfinite(res["circulation_min"])
    assert res["steps"] > 5


def test_refinement_deposits_more_circulation():
    """Fig. 7's convergence direction: finer meshes capture more
    interfacial circulation (|Gamma| grows with resolution)."""
    coarse = small_run(nx=32, ny=16, t_end_over_tau=0.8)
    fine = small_run(nx=64, ny=32, t_end_over_tau=0.8)
    assert abs(fine["circulation_min"]) > abs(coarse["circulation_min"])


def test_amr_run_refines_waves():
    res = small_run(max_levels=2, regrid_interval=3, initial_regrids=1,
                    t_end_over_tau=0.3)
    assert res["nlevels"] == 2
    assert res["total_cells"] > 48 * 24


def test_amr_circulation_close_to_equivalent_uniform():
    """A 2-level AMR run should land near the uniform run at the same
    effective resolution (the refined region covers the active waves)."""
    amr = small_run(nx=32, ny=16, max_levels=2, regrid_interval=2,
                    initial_regrids=1, t_end_over_tau=0.6)
    uniform = small_run(nx=64, ny=32, t_end_over_tau=0.6)
    assert amr["circulation_min"] == pytest.approx(
        uniform["circulation_min"], rel=0.4)


def test_assembly_table_matches_paper_table3():
    table = assembly_table("shock_interface")
    assert table["Initial Condition"] == ["ConicalInterfaceIC"]
    assert "GodunovFlux" in table["Explicit Integration"]
    assert table["Implicit Integration"] == ["N/A"]
    assert table["Adaptors"] == ["InviscidFlux"]


def test_assembly_reuses_mesh_and_regrid_components():
    """Conclusion item 2: GrACEComponent and ErrorEstAndRegrid instances
    appear in both SAMR assemblies."""
    from repro.apps.reaction_diffusion import RD_COMPONENTS
    from repro.apps.shock_interface import SHOCK_COMPONENTS
    from repro.components import ErrorEstAndRegrid, GrACEComponent

    for cls in (GrACEComponent, ErrorEstAndRegrid):
        assert cls in RD_COMPONENTS
        assert cls in SHOCK_COMPONENTS


def test_describe_assembly_shows_flux_wiring():
    fw = Framework()
    build_shock_interface(fw, flux_scheme="godunov")
    text = fw.describe()
    assert "InviscidFlux.flux -> GodunovFlux.flux" in text
    fw2 = Framework()
    build_shock_interface(fw2, flux_scheme="efm")
    assert "InviscidFlux.flux -> EFMFlux.flux" in fw2.describe()
