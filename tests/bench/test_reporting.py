"""Tests for the bench reporting helpers."""

import json
import os

import numpy as np
import pytest

from repro.bench import format_table, save_json, save_report


def test_format_table_alignment():
    text = format_table(["a", "longheader"], [[1, 2.5], [333, 4.0]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert "longheader" in lines[0]
    # column separators align
    assert lines[1].count("-") >= len("longheader")


def test_format_table_title_and_floats():
    text = format_table(["x"], [[1.23456789]], title="T",
                        floatfmt="{:.2f}")
    assert text.splitlines()[0] == "T"
    assert "1.23" in text


def test_format_table_empty_rows():
    text = format_table(["h1", "h2"], [])
    assert "h1" in text


def test_save_report_roundtrip(tmp_path):
    path = save_report("unit", "hello\nworld", directory=str(tmp_path))
    assert os.path.exists(path)
    with open(path) as fh:
        assert fh.read() == "hello\nworld\n"


def test_save_report_env_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "envdir"))
    path = save_report("unit2", "x")
    assert str(tmp_path / "envdir") in path


def test_save_json_injects_schema(tmp_path):
    path = save_json("t", {"rows": [1, 2]}, directory=str(tmp_path))
    assert path.endswith("t.json")
    doc = json.loads(open(path).read())
    assert doc == {"schema": 1, "rows": [1, 2]}


def test_save_json_env_dir_and_numpy_values(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "envdir"))
    path = save_json("np", {
        "scalar": np.float64(1.5),
        "count": np.int64(3),
        "series": np.arange(3),
    })
    assert str(tmp_path / "envdir") in path
    doc = json.loads(open(path).read())
    assert doc["scalar"] == 1.5
    assert doc["count"] == 3
    assert doc["series"] == [0, 1, 2]
