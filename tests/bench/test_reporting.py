"""Tests for the bench reporting helpers."""

import os

import pytest

from repro.bench import format_table, save_report


def test_format_table_alignment():
    text = format_table(["a", "longheader"], [[1, 2.5], [333, 4.0]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert "longheader" in lines[0]
    # column separators align
    assert lines[1].count("-") >= len("longheader")


def test_format_table_title_and_floats():
    text = format_table(["x"], [[1.23456789]], title="T",
                        floatfmt="{:.2f}")
    assert text.splitlines()[0] == "T"
    assert "1.23" in text


def test_format_table_empty_rows():
    text = format_table(["h1", "h2"], [])
    assert "h1" in text


def test_save_report_roundtrip(tmp_path):
    path = save_report("unit", "hello\nworld", directory=str(tmp_path))
    assert os.path.exists(path)
    with open(path) as fh:
        assert fh.read() == "hello\nworld\n"


def test_save_report_env_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "envdir"))
    path = save_report("unit2", "x")
    assert str(tmp_path / "envdir") in path
