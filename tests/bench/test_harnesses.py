"""Fast-mode smoke tests of the table/figure harnesses: they must run,
produce well-formed reports, and satisfy the paper's qualitative claims
at reduced scale.  (The full-scale claims are asserted in benchmarks/.)"""

import pytest

from repro.bench import (
    run_fig3_fig4,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_table5,
)


@pytest.fixture(scope="module")
def fig8():
    return run_fig8(fast=True)


def test_fig8_flat_and_ordered(fig8):
    assert "Fig 8" in fig8["report"]
    for ratio in fig8["flatness"].values():
        assert ratio < 1.6
    results = fig8["results"]
    assert results[0].n_local < results[1].n_local
    assert max(results[0].times) < min(results[1].times)


def test_table5_statistics(fig8):
    res = run_table5(fig8["results"], fast=True)
    assert "Table 5" in res["report"]
    for r in res["results"]:
        assert r.stdev < r.mean
        assert r.median == pytest.approx(r.mean, rel=0.3)
    for _b, _a, got, _exp in res["ratios"]:
        assert got > 1.2  # bigger per-rank meshes take longer


def test_fig9_efficiency_ordering():
    res = run_fig9(fast=True)
    assert "Fig 9" in res["report"]
    assert 0.0 < res["worst_small"] < 1.2
    assert res["worst_large"] > res["worst_small"]
    for c in res["curves"].values():
        assert c["efficiency"][0] == pytest.approx(1.0)
        assert c["times"][-1] < c["times"][0]


def test_fig7_convergence_direction():
    res = run_fig7(fast=True)
    assert res["monotone"]
    for c in res["curves"].values():
        assert c["min"] < 0.0
        assert c["series"]  # time series recorded


def test_fig6_field_summary():
    res = run_fig6(fast=True)
    rho_min, rho_max = res["rho_range"]
    assert rho_max > rho_min > 0.0
    assert res["reflected_shocks"]
    assert "Fig 6" in res["report"]


def test_fig3_fig4_snapshots():
    res = run_fig3_fig4(fast=True)
    snaps = res["snapshots"]
    assert len(snaps) == 4  # t0 + 3 chunks
    assert snaps[0]["T_max"] > 1000.0
    assert res["refined"]
    assert "census" in snaps[-1]
