"""Bench-trajectory ledger: append, fingerprint, KPI extraction."""

import json
import os

import pytest

from repro.bench import trajectory
from repro.bench.reporting import save_json


@pytest.fixture
def traj_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRAJECTORY_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_TRAJECTORY", raising=False)
    return tmp_path


def test_enabled_env_values(monkeypatch):
    monkeypatch.delenv("REPRO_TRAJECTORY", raising=False)
    assert trajectory.enabled()
    for off in ("0", "false", "No", "OFF"):
        monkeypatch.setenv("REPRO_TRAJECTORY", off)
        assert not trajectory.enabled()
    monkeypatch.setenv("REPRO_TRAJECTORY", "1")
    assert trajectory.enabled()


def test_append_run_creates_schema_versioned_ledger(traj_dir):
    path = trajectory.append_run("demo", {"t": 1.25, "n": 3})
    assert path == str(traj_dir / "BENCH_demo.json")
    doc = json.loads(open(path).read())
    assert doc["schema"] == trajectory.TRAJECTORY_SCHEMA
    assert doc["bench"] == "demo"
    (run,) = doc["runs"]
    assert run["metrics"] == {"t": 1.25, "n": 3.0}
    fp = run["fingerprint"]
    assert set(fp) == {"host", "commit", "fast", "python"}
    assert isinstance(fp["fast"], bool)


def test_append_accumulates_and_caps_history(traj_dir):
    for i in range(6):
        trajectory.append_run("demo", {"t": float(i)}, max_runs=4)
    doc = trajectory.load_trajectory(
        trajectory.trajectory_path("demo"))
    assert [r["metrics"]["t"] for r in doc["runs"]] == [2.0, 3.0, 4.0, 5.0]


def test_explicit_metrics_override_extraction(traj_dir):
    trajectory.append_run("demo", {"t": 1.0, "junk": 9.0},
                          metrics={"kpi": 2.0})
    doc = trajectory.load_trajectory(trajectory.trajectory_path("demo"))
    assert doc["runs"][0]["metrics"] == {"kpi": 2.0}


def test_extract_metrics_flattens_scalars_only():
    out = trajectory.extract_metrics({
        "schema": 1,               # dropped
        "t": 1.5,
        "n": 3,
        "ok": True,                # bools dropped
        "times": [1, 2, 3],        # lists dropped
        "nested": {"mean": 2.0, "deep": {"max": 4.0}},
        "label": "text",           # strings dropped
    })
    assert out == {"t": 1.5, "n": 3.0, "nested.mean": 2.0,
                   "nested.deep.max": 4.0}


def test_corrupt_ledger_is_replaced_not_fatal(traj_dir):
    path = trajectory.trajectory_path("demo")
    with open(path, "w") as fh:
        fh.write("{broken")
    assert trajectory.load_trajectory(path) is None
    trajectory.append_run("demo", {"t": 1.0})
    doc = trajectory.load_trajectory(path)
    assert len(doc["runs"]) == 1


def test_discover_sorted(traj_dir):
    trajectory.append_run("zeta", {"t": 1.0})
    trajectory.append_run("alpha", {"t": 1.0})
    names = [os.path.basename(p) for p in trajectory.discover()]
    assert names == ["BENCH_alpha.json", "BENCH_zeta.json"]
    assert trajectory.discover(str(traj_dir / "missing")) == []


def test_save_json_appends_to_trajectory(traj_dir, tmp_path, monkeypatch):
    """The reporting layer feeds the ledger: every save_json call adds
    one trajectory entry unless REPRO_TRAJECTORY=0."""
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "bench_results"))
    save_json("demo", {"t": 1.0}, metrics={"t": 1.0})
    save_json("demo", {"t": 1.1}, metrics={"t": 1.1})
    doc = trajectory.load_trajectory(trajectory.trajectory_path("demo"))
    assert [r["metrics"]["t"] for r in doc["runs"]] == [1.0, 1.1]
    monkeypatch.setenv("REPRO_TRAJECTORY", "0")
    save_json("demo", {"t": 9.0}, metrics={"t": 9.0})
    doc = trajectory.load_trajectory(trajectory.trajectory_path("demo"))
    assert len(doc["runs"]) == 2


def test_code_fingerprint_is_public_and_stable(monkeypatch):
    monkeypatch.setenv("REPRO_FAST", "1")
    fp = trajectory.code_fingerprint()
    assert set(fp) == {"host", "commit", "fast", "python"}
    assert fp["fast"] is True
    # the private alias used by append_run stays in sync
    assert trajectory.fingerprint() == fp
