"""Unit tests for the Table 4 harness internals (cheap pieces only; the
full measurement runs in benchmarks/)."""

import numpy as np
import pytest

from repro.bench.overhead import (
    OverheadRow,
    _ComponentCase,
    _LibraryCase,
    _seeded_mixture,
    _timed_interleaved,
)
from repro.chemistry import h2_lite_mechanism


def test_overhead_row_pct():
    row = OverheadRow("1", 100, 150, t_component=1.02, t_library=1.00)
    assert row.pct_diff == pytest.approx(2.0)
    row2 = OverheadRow("10", 100, 424, 0.98, 1.00)
    assert row2.pct_diff == pytest.approx(-2.0)


def test_seeded_mixture_normalized_with_radical():
    mech = h2_lite_mechanism()
    Y = _seeded_mixture(mech)
    assert Y.sum() == pytest.approx(1.0)
    assert Y[mech.species_index("H")] > 0.0
    assert Y[mech.species_index("N2")] > 0.5


def test_component_and_library_cases_do_identical_numerics():
    """Both call paths integrate the same cell to the same state with the
    same RHS-evaluation count — the precondition of the overhead claim."""
    T0, t_end, rtol, atol = 1200.0, 5e-7, 1e-6, 1e-10
    comp = _ComponentCase(T0, t_end, rtol, atol)
    lib = _LibraryCase(T0, t_end, rtol, atol)
    np.testing.assert_allclose(comp.y_init, lib.y_init, rtol=1e-12)
    comp.integrate_cell()
    lib.integrate_cell()
    assert comp.nfe == lib.nfe  # identical step/Newton sequences


def test_timed_interleaved_counts_all_cells():
    T0, t_end, rtol, atol = 1200.0, 2e-7, 1e-6, 1e-10
    comp = _ComponentCase(T0, t_end, rtol, atol)
    lib = _LibraryCase(T0, t_end, rtol, atol)
    t_c, t_l = _timed_interleaved(comp, lib, n_cells=4, n_blocks=2)
    assert t_c > 0.0 and t_l > 0.0
    assert comp.nfe == lib.nfe > 0
