"""The findings model: codes, severities, report gating and rendering."""

import json

import pytest

from repro.analysis.findings import (
    CODES,
    Finding,
    Report,
    Severity,
    codes_table,
    finding,
)


def test_severity_ordering_and_str():
    assert Severity.INFO < Severity.WARNING < Severity.ERROR
    assert str(Severity.ERROR) == "error"
    assert Severity.parse("warning") is Severity.WARNING
    with pytest.raises(ValueError, match="unknown severity"):
        Severity.parse("fatal")


def test_unknown_code_rejected():
    with pytest.raises(ValueError, match="unknown finding code"):
        Finding(code="RA999", message="nope")


def test_finding_defaults_severity_from_table():
    f = finding("RA006", "boom", path="a.rc", line=3)
    assert f.severity is Severity.ERROR
    assert f.title == CODES["RA006"][1]
    assert f.format() == "a.rc:3: RA006 error: boom"


def test_finding_severity_override():
    f = finding("RA012", "meh", severity=Severity.WARNING)
    assert f.severity is Severity.WARNING


def test_report_counts_gate_and_sorting():
    r = Report([
        finding("RA012", "later", path="b.rc", line=9),
        finding("RA006", "first", path="a.rc", line=1),
    ])
    assert r.counts() == {"error": 1, "warning": 0, "info": 1}
    assert [f.path for f in r.sorted()] == ["a.rc", "b.rc"]
    assert r.exit_code() == 1
    assert r.exit_code(Severity.WARNING) == 1
    assert Report([finding("RA012", "x")]).exit_code() == 0


def test_report_text_severity_floor():
    r = Report([finding("RA012", "hidden info"),
                finding("RA006", "visible error")])
    text = r.format_text(Severity.ERROR)
    assert "visible error" in text
    assert "hidden info" not in text
    assert "1 error(s), 0 warning(s), 1 info note(s)" in text


def test_report_json_schema():
    r = Report([finding("RA006", "boom", path="a.rc", line=3)])
    doc = json.loads(r.to_json())
    assert doc["schema"] == Report.SCHEMA
    assert doc["counts"]["error"] == 1
    (entry,) = doc["findings"]
    assert entry["code"] == "RA006"
    assert entry["severity"] == "error"
    assert entry["line"] == 3


def test_codes_table_lists_every_code():
    table = codes_table()
    for code in CODES:
        assert code in table
