"""The RA41x assembly contract pass over synthetic manifests."""

import pytest

from repro.analysis.contracts import (
    analyze_assembly_contracts,
    analyze_script_contracts,
    check_job,
    coerce_job_params,
)
from repro.analysis.findings import Severity
from repro.analysis.manifest import (ComponentManifest, ParamSpec,
                                     PortSpec)


def widget_manifest():
    return ComponentManifest(
        class_name="Widget",
        provides=[PortSpec(name="out", type="OutPort")],
        uses=[PortSpec(name="src", type="OutPort", required=True),
              PortSpec(name="aux", type="AuxPort")],
        parameters=[
            ParamSpec(name="gain", type="float", default=1.0,
                      min=0.0, max=10.0),
            ParamSpec(name="mode", type="str", default="fast",
                      choices=["fast", "slow"]),
            ParamSpec(name="steps", type="int", default=4, min=1),
            ParamSpec(name="label", type="str", required=True),
        ])


def source_manifest():
    return ComponentManifest(
        class_name="Source",
        provides=[PortSpec(name="out", type="OutPort"),
                  PortSpec(name="raw", type="RawPort")],
        parameters=[ParamSpec(name="rate", type="float", default=2.0)])


@pytest.fixture
def manifests():
    return {"Widget": widget_manifest(), "Source": source_manifest()}


BASE = """\
instantiate Source feed
instantiate Widget w
parameter w label run-1
connect w src feed out
go w
"""


def codes(findings):
    return sorted(f.code for f in findings)


def check(script, manifests):
    return analyze_script_contracts(script, "<t>", manifests)


def test_clean_script_has_no_findings(manifests):
    assert check(BASE, manifests) == []


def test_ra411_unknown_parameter(manifests):
    out = check(BASE + "parameter w bogus 3\n", manifests)
    assert codes(out) == ["RA411"]
    assert "bogus" in out[0].message


def test_ra411_did_you_mean(manifests):
    out = check(BASE + "parameter w gian 3\n", manifests)
    assert codes(out) == ["RA411"]
    assert "did you mean 'gain'" in out[0].message


def test_ra412_out_of_range(manifests):
    out = check(BASE + "parameter w gain 99.0\n", manifests)
    assert codes(out) == ["RA412"]
    out = check(BASE + "parameter w steps 0\n", manifests)
    assert codes(out) == ["RA412"]


def test_ra413_bad_choice(manifests):
    out = check(BASE + "parameter w mode turbo\n", manifests)
    assert codes(out) == ["RA413"]


def test_ra414_wrong_type(manifests):
    out = check(BASE + "parameter w gain hot\n", manifests)
    assert codes(out) == ["RA414"]
    # ints are acceptable floats; floats are not acceptable ints
    assert check(BASE + "parameter w gain 3\n", manifests) == []
    out = check(BASE + "parameter w steps 2.5\n", manifests)
    assert codes(out) == ["RA414"]


def test_ra415_required_parameter_missing(manifests):
    script = BASE.replace("parameter w label run-1\n", "")
    out = check(script, manifests)
    assert codes(out) == ["RA415"]
    assert "label" in out[0].message


def test_ra416_parameter_on_wrong_instance(manifests):
    out = check(BASE + "parameter w rate 3.0\n", manifests)
    assert codes(out) == ["RA416"]
    assert out[0].severity == Severity.WARNING
    assert "feed" in out[0].message  # points at the declaring instance


def test_ra417_required_port_unconnected(manifests):
    script = BASE.replace("connect w src feed out\n", "")
    out = check(script, manifests)
    assert codes(out) == ["RA417"]
    assert "src" in out[0].message


def test_ra417_skips_unreachable_and_library_scripts(manifests):
    # no go directive: library assembly, schedule not checkable
    script = "instantiate Widget w\nparameter w label x\n"
    assert check(script, manifests) == []
    # w is not reachable from the go target
    script = ("instantiate Source feed\ninstantiate Widget w\n"
              "parameter w label x\ngo feed\n")
    assert check(script, manifests) == []


def test_ra417_optional_port_never_flagged(manifests):
    # aux (required=False) stays unconnected in BASE: no finding
    assert check(BASE, manifests) == []


def test_ra418_port_type_mismatch(manifests):
    script = BASE.replace("connect w src feed out",
                          "connect w src feed raw")
    out = check(script, manifests)
    assert codes(out) == ["RA418"]
    assert "OutPort" in out[0].message and "RawPort" in out[0].message


def test_unmanifested_classes_are_skipped(manifests):
    script = BASE + ("instantiate Mystery m\n"
                     "parameter m whatever 1\n")
    assert check(script, manifests) == []


# -- serve admission entry points -----------------------------------------
def test_check_job_clean(manifests):
    assert check_job(BASE, {"w.gain": 2.0}, manifests=manifests) == []


def test_check_job_flags_override_values(manifests):
    out = check_job(BASE, {"w.gain": 99.0, "w.mode": "turbo"},
                    manifests=manifests)
    assert codes(out) == ["RA412", "RA413"]


def test_check_job_override_on_unknown_instance(manifests):
    out = check_job(BASE, {"fed.rate": 1.0}, manifests=manifests)
    assert codes(out) == ["RA411"]
    assert "did you mean 'feed'" in out[0].message


def test_check_job_override_satisfies_required(manifests):
    script = BASE.replace("parameter w label run-1\n", "")
    assert check_job(script, {"w.label": "run-2"},
                     manifests=manifests) == []
    assert codes(check_job(script, None, manifests=manifests)) == \
        ["RA415"]


def test_check_job_rejects_syntax_errors(manifests):
    out = check_job("instantiate Widget\n", manifests=manifests)
    assert codes(out) == ["RA001"]


def test_coerce_job_params(manifests):
    coerced = coerce_job_params(BASE, {"w.gain": 3, "w.steps": 2,
                                       "w.label": 7, "w.bogus": "x"},
                                manifests)
    assert coerced["w.gain"] == 3.0 and isinstance(coerced["w.gain"],
                                                   float)
    assert coerced["w.steps"] == 2
    assert coerced["w.label"] == "7"  # str params coerce with str()
    assert coerced["w.bogus"] == "x"  # undeclared: untouched


# -- shipped assemblies ----------------------------------------------------
@pytest.mark.parametrize("name", ["ignition0d", "reaction_diffusion",
                                  "shock_interface"])
def test_shipped_assemblies_pass_contracts(name):
    findings = analyze_assembly_contracts(name)
    assert findings == [], "\n".join(f.format() for f in findings)


def test_unknown_assembly_reports_ra002():
    assert codes(analyze_assembly_contracts("nope")) == ["RA002"]
