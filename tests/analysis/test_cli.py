"""CLI: target resolution, formats, exit codes."""

import json
import pathlib

from repro.analysis.__main__ import main

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
REPO = pathlib.Path(__file__).resolve().parents[2]


def test_codes_flag(capsys):
    assert main(["--codes"]) == 0
    out = capsys.readouterr().out
    assert "RA001" in out and "RA203" in out


def test_bad_script_exits_1_with_line_numbered_findings(capsys):
    rc = main([str(FIXTURES / "bad_wiring.rc")])
    assert rc == 1
    out = capsys.readouterr().out
    assert "bad_wiring.rc:15: RA006 error" in out


def test_json_format(capsys):
    assert main(["--format", "json",
                 str(FIXTURES / "bad_component.py")]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["counts"]["error"] >= 2
    assert any(f["code"] == "RA104" for f in doc["findings"])


def test_strict_gates_warnings(capsys):
    target = str(FIXTURES / "bad_scmd.py")
    assert main([target]) == 0          # warnings only: passes default gate
    assert main(["--strict", target]) == 1


def test_allow_extends_scmd_allowlist(capsys):
    target = str(FIXTURES / "bad_scmd.py")
    assert main(["--strict", "--allow", "cache", "--allow", "results",
                 "--allow", "history", "--allow", "_counts", target]) == 0


def test_assembly_target(capsys):
    assert main(["ignition0d"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_package_target(capsys):
    assert main(["repro.components"]) == 0


def test_directory_target(capsys):
    assert main([str(REPO / "examples")]) == 0


def test_unresolvable_target_exits_2(capsys):
    assert main(["no/such/thing.rc"]) == 2
    assert "cannot resolve target" in capsys.readouterr().err


def test_min_severity_filters_text(capsys):
    main(["--min-severity", "error", str(FIXTURES / "bad_component.py")])
    out = capsys.readouterr().out
    assert "RA103" not in out
    assert "RA101" in out


def test_default_surface_is_clean(capsys):
    assert main([]) == 0


# --------------------------------------------------------------- --races
def test_races_flag_gates_seeded_fixture(capsys):
    target = str(FIXTURES / "seeded_race.py")
    assert main(["--races", target]) == 1
    out = capsys.readouterr().out
    assert "RA301" in out
    # without --races only the RA2xx warnings remain: the default gate
    # passes and the RA3xx codes must not appear
    assert main([target]) == 0
    assert "RA301" not in capsys.readouterr().out


def test_races_json_format(capsys):
    assert main(["--races", "--format", "json",
                 str(FIXTURES / "seeded_race.py")]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["counts"]["error"] >= 1
    assert any(f["code"] == "RA301" for f in doc["findings"])


def test_races_default_surface_is_clean(capsys):
    assert main(["--races", "--strict"]) == 0


def test_races_unresolvable_target_exits_2(capsys):
    assert main(["--races", "no/such/thing.rc"]) == 2
    assert "cannot resolve target" in capsys.readouterr().err


def test_clean_target_exits_0_in_both_formats(capsys):
    target = str(REPO / "examples")
    assert main(["--races", target]) == 0
    assert "0 error(s)" in capsys.readouterr().out
    assert main(["--races", "--format", "json", target]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["counts"]["error"] == 0


# ----------------------------------------------------------- --contracts
def test_contracts_flag_gates_seeded_fixture(capsys):
    target = str(FIXTURES / "bad_contracts.rc")
    assert main(["--contracts", target]) == 1
    out = capsys.readouterr().out
    assert "RA412" in out and "RA411" in out and "RA413" in out
    # without --contracts the same script passes the wiring-only gate
    assert main([target]) == 0
    assert "RA412" not in capsys.readouterr().out


def test_contracts_with_races_json(capsys):
    target = str(FIXTURES / "bad_contracts.rc")
    assert main(["--contracts", "--races", "--format", "json",
                 target]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["counts"]["error"] == 3
    found = {f["code"] for f in doc["findings"]}
    assert {"RA411", "RA412", "RA413", "RA416"} <= found


def test_contracts_strict_gates_the_ra416_warning(capsys):
    # drop the three error lines: only the RA416 warning remains
    text = (FIXTURES / "bad_contracts.rc").read_text()
    kept = [ln for ln in text.splitlines()
            if "9999999" not in ln and "bogus" not in ln
            and "h3-air" not in ln]
    import pathlib
    import tempfile
    with tempfile.TemporaryDirectory() as td:
        rc = pathlib.Path(td) / "warn_only.rc"
        rc.write_text("\n".join(kept) + "\n")
        assert main(["--contracts", str(rc)]) == 0
        assert main(["--contracts", "--strict", str(rc)]) == 1


def test_contracts_default_surface_is_clean(capsys):
    assert main(["--contracts", "--races", "--strict"]) == 0


def test_contracts_unresolvable_target_exits_2(capsys):
    assert main(["--contracts", "no/such/thing.rc"]) == 2
    assert "cannot resolve target" in capsys.readouterr().err


# ------------------------------------------------------ manifest command
def test_manifest_check_committed_tree_clean(capsys):
    assert main(["manifest", "check"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_manifest_check_json(capsys):
    assert main(["manifest", "check", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["counts"]["error"] == 0


def test_manifest_check_empty_dir_fails(tmp_path, capsys):
    assert main(["manifest", "check", "--dir", str(tmp_path)]) == 1
    assert "RA406" in capsys.readouterr().out


def test_manifest_emit_writes_and_is_idempotent(tmp_path, capsys):
    assert main(["manifest", "emit", "--dir", str(tmp_path),
                 "Initializer", "CvodeComponent"]) == 0
    out = capsys.readouterr().out.strip().splitlines()
    assert len(out) == 2
    first = {p: open(p).read() for p in out}
    assert main(["manifest", "emit", "--dir", str(tmp_path),
                 "Initializer", "CvodeComponent"]) == 0
    capsys.readouterr()
    assert {p: open(p).read() for p in first} == first


def test_manifest_emit_unknown_class_exits_2(capsys):
    assert main(["manifest", "emit", "NoSuchComponent"]) == 2
    assert "unknown component class" in capsys.readouterr().err
