"""CLI: target resolution, formats, exit codes."""

import json
import pathlib

from repro.analysis.__main__ import main

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
REPO = pathlib.Path(__file__).resolve().parents[2]


def test_codes_flag(capsys):
    assert main(["--codes"]) == 0
    out = capsys.readouterr().out
    assert "RA001" in out and "RA203" in out


def test_bad_script_exits_1_with_line_numbered_findings(capsys):
    rc = main([str(FIXTURES / "bad_wiring.rc")])
    assert rc == 1
    out = capsys.readouterr().out
    assert "bad_wiring.rc:15: RA006 error" in out


def test_json_format(capsys):
    assert main(["--format", "json",
                 str(FIXTURES / "bad_component.py")]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["counts"]["error"] >= 2
    assert any(f["code"] == "RA104" for f in doc["findings"])


def test_strict_gates_warnings(capsys):
    target = str(FIXTURES / "bad_scmd.py")
    assert main([target]) == 0          # warnings only: passes default gate
    assert main(["--strict", target]) == 1


def test_allow_extends_scmd_allowlist(capsys):
    target = str(FIXTURES / "bad_scmd.py")
    assert main(["--strict", "--allow", "cache", "--allow", "results",
                 "--allow", "history", "--allow", "_counts", target]) == 0


def test_assembly_target(capsys):
    assert main(["ignition0d"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_package_target(capsys):
    assert main(["repro.components"]) == 0


def test_directory_target(capsys):
    assert main([str(REPO / "examples")]) == 0


def test_unresolvable_target_exits_2(capsys):
    assert main(["no/such/thing.rc"]) == 2
    assert "cannot resolve target" in capsys.readouterr().err


def test_min_severity_filters_text(capsys):
    main(["--min-severity", "error", str(FIXTURES / "bad_component.py")])
    out = capsys.readouterr().out
    assert "RA103" not in out
    assert "RA101" in out


def test_default_surface_is_clean(capsys):
    assert main([]) == 0


# --------------------------------------------------------------- --races
def test_races_flag_gates_seeded_fixture(capsys):
    target = str(FIXTURES / "seeded_race.py")
    assert main(["--races", target]) == 1
    out = capsys.readouterr().out
    assert "RA301" in out
    # without --races only the RA2xx warnings remain: the default gate
    # passes and the RA3xx codes must not appear
    assert main([target]) == 0
    assert "RA301" not in capsys.readouterr().out


def test_races_json_format(capsys):
    assert main(["--races", "--format", "json",
                 str(FIXTURES / "seeded_race.py")]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["counts"]["error"] >= 1
    assert any(f["code"] == "RA301" for f in doc["findings"])


def test_races_default_surface_is_clean(capsys):
    assert main(["--races", "--strict"]) == 0


def test_races_unresolvable_target_exits_2(capsys):
    assert main(["--races", "no/such/thing.rc"]) == 2
    assert "cannot resolve target" in capsys.readouterr().err


def test_clean_target_exits_0_in_both_formats(capsys):
    target = str(REPO / "examples")
    assert main(["--races", target]) == 0
    assert "0 error(s)" in capsys.readouterr().out
    assert main(["--races", "--format", "json", target]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["counts"]["error"] == 0
