"""CLI: target resolution, formats, exit codes."""

import json
import pathlib

from repro.analysis.__main__ import main

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
REPO = pathlib.Path(__file__).resolve().parents[2]


def test_codes_flag(capsys):
    assert main(["--codes"]) == 0
    out = capsys.readouterr().out
    assert "RA001" in out and "RA203" in out


def test_bad_script_exits_1_with_line_numbered_findings(capsys):
    rc = main([str(FIXTURES / "bad_wiring.rc")])
    assert rc == 1
    out = capsys.readouterr().out
    assert "bad_wiring.rc:15: RA006 error" in out


def test_json_format(capsys):
    assert main(["--format", "json",
                 str(FIXTURES / "bad_component.py")]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["counts"]["error"] >= 2
    assert any(f["code"] == "RA104" for f in doc["findings"])


def test_strict_gates_warnings(capsys):
    target = str(FIXTURES / "bad_scmd.py")
    assert main([target]) == 0          # warnings only: passes default gate
    assert main(["--strict", target]) == 1


def test_allow_extends_scmd_allowlist(capsys):
    target = str(FIXTURES / "bad_scmd.py")
    assert main(["--strict", "--allow", "cache", "--allow", "results",
                 "--allow", "history", "--allow", "_counts", target]) == 0


def test_assembly_target(capsys):
    assert main(["ignition0d"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_package_target(capsys):
    assert main(["repro.components"]) == 0


def test_directory_target(capsys):
    assert main([str(REPO / "examples")]) == 0


def test_unresolvable_target_exits_2(capsys):
    assert main(["no/such/thing.rc"]) == 2
    assert "cannot resolve target" in capsys.readouterr().err


def test_min_severity_filters_text(capsys):
    main(["--min-severity", "error", str(FIXTURES / "bad_component.py")])
    out = capsys.readouterr().out
    assert "RA103" not in out
    assert "RA101" in out


def test_default_surface_is_clean(capsys):
    assert main([]) == 0
