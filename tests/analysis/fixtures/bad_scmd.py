"""Known-bad SCMD source: exercises the RA2xx shared-state findings.

Never imported by the tests — only parsed by the analyzer.
"""

from repro.cca import Component
from repro.util.logging import get_logger

_log = get_logger("fixture")          # allowlisted: no finding

cache = {}                            # RA201 (lowercase mutable)
results = []                          # RA201
DEFAULTS = {"gamma": 1.4}             # RA204 (constant-style)
shared_ok = {}  # scmd: shared       -- pragma: no finding


class RacyComponent(Component):
    history = []                      # RA202 (mutable class attribute)
    _counts = {}                      # RA202

    def set_services(self, services):
        self.services = services

    def go(self):
        global cache
        RacyComponent.history = []            # RA203 (class attr write)
        self.__class__._counts["go"] = 1      # RA203 (__class__ write)
        cache["result"] = 42                  # RA203 (module dict write)
        results.append("x")                   # RA203 (module list mutation)
        cache = {}                            # RA203 (global rebind)

    def step(self):
        shared_ok["tick"] = 1  # scmd: shared -- pragma: no finding
