"""Seeded-race fixture: a deliberately racy component.

``RacyTally`` keeps its tally in a *class-level* dict — one object
shared by every instance on every SCMD rank-thread — and writes it from
``go()`` with no rank guard and no collective.  Both race-detector
layers must catch this:

* statically, ``repro.analysis.races`` flags the ``go`` writes
  (RA301/RA302 on top of the RA202/RA203 shared-state lint);
* dynamically, an armed ``repro.mpi.sanitizer`` sees unordered writes
  from two rank-threads through the shadowed class dict and raises
  ``DataRaceError``.

Kept under ``tests/analysis/fixtures`` so the shipped analysis surface
stays clean; never import this from product code.
"""

from repro.cca.component import Component
from repro.cca.ports import GoPort


class _RacyGo(GoPort):
    def __init__(self, owner):
        self.owner = owner

    def go(self):
        return self.owner.run()


class RacyTally(Component):
    """Counts steps into one dict shared across every rank-thread."""

    tallies = {}  # the seeded race: class-level mutable, written in run()

    def set_services(self, services):
        self.services = services
        services.add_provides_port(_RacyGo(self), "go")

    def run(self):
        comm = self.services.get_comm()
        n_steps = self.services.get_parameter("n_steps", 8)
        for step in range(n_steps):
            # every rank writes the same shared dict: a data race in
            # SCMD mode, silent until the sanitizer is armed
            RacyTally.tallies[step] = RacyTally.tallies.get(step, 0) + 1
        if comm is not None:
            comm.barrier()
        return len(RacyTally.tallies)
