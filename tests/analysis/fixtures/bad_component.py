"""Known-bad component source: exercises the RA1xx lifecycle findings.

Never imported by the tests — only parsed by the linter.
"""

from repro.cca import Component, Port


class WorkPort(Port):
    pass


class _Work(WorkPort):
    def __init__(self, owner):
        self.owner = owner

    def work(self):
        # helper class: resolves against the file union; 'mish' is a
        # near miss of the registered 'mesh' -> RA104
        return self.owner.services.get_port("mish")


class SloppyComponent(Component):
    def set_services(self, services):
        self.services = services
        services.register_uses_port("mesh", "MeshPort")
        services.register_uses_port("spare", "SparePort")   # RA105
        services.add_provides_port(_Work(self), "work")

    def run(self):
        mesh = self.services.get_port("mesh")               # RA103
        data = self.services.get_port("data")               # RA101
        name = "dyn"
        dyn = self.services.get_port(name)                  # RA106
        return mesh, data, dyn

    def late_registration(self):
        # ports must exist before wiring -> RA102
        self.services.register_uses_port("late", "LatePort")


class TidyComponent(Component):
    """The clean counterpart: no findings above info expected."""

    def set_services(self, services):
        self.services = services
        services.register_uses_port("grid", "MeshPort")

    def run(self):
        grid = self.services.get_port("grid")
        try:
            return grid.cells()
        finally:
            self.services.release_port("grid")
