"""Fixture component for the RA40x manifest drift tests.

One class exercising every extraction surface: typed ports, guarded and
unguarded uses fetches, typed parameter reads (accessor-, cast- and
default-inferred), checkpoint state, and an scmd-shared class attribute.
"""

from repro.cca.component import Component
from repro.cca.port import Port


class _OutPort(Port):
    def __init__(self, owner):
        self.owner = owner

    def emit(self):
        gain = float(self.owner.services.get_parameter("gain", 1.0))
        return gain


class ContractWidget(Component):
    cache = {}  # scmd: shared — deliberate cross-rank memo table

    def set_services(self, services) -> None:
        self.services = services
        services.register_uses_port("src", "OutPort")
        services.register_uses_port("sink", "OutPort")
        services.add_provides_port(_OutPort(self), "out")
        self.level = 0

    def run(self) -> float:
        mode = self.services.get_parameter("mode", "fast")
        steps = self.services.parameters.get_int("steps", 4)
        port = self.services.get_port("src")  # unguarded: required
        if self.services.is_connected("sink"):
            self.services.get_port("sink")
        self.level += steps
        return port.emit() if mode == "fast" else 0.0

    def checkpoint_state(self) -> dict:
        return {"level": self.level}

    def restore_state(self, state: dict) -> None:
        self.level = state["level"]
