"""Static SCMD race pass: RA301–RA308, happens-before approximation."""

import pathlib
import textwrap

from repro.analysis.findings import Severity
from repro.analysis.races import (
    analyze_file_races,
    analyze_script_races,
    analyze_source_races,
)
from repro.cca.component import Component

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def lint(code, **kw):
    return analyze_source_races(textwrap.dedent(code), "<test>", **kw)


def codes(findings):
    return [f.code for f in findings]


# ------------------------------------------------------------ RA301 / RA302
def test_unguarded_shared_write_ra301():
    (f,) = lint("""\
        class C:
            cfg = {}
            def go(self):
                C.cfg['x'] = 1
        """)
    assert f.code == "RA301"
    assert f.severity is Severity.ERROR
    assert "every rank-thread" in f.message


def test_unguarded_module_global_write_ra301():
    (f,) = lint("""\
        state = {}
        class C:
            def go(self):
                state['x'] = 1
        """)
    assert f.code == "RA301"


def test_accumulation_into_shared_ra302():
    (f,) = lint("""\
        class C:
            seen = []
            def go(self, x):
                C.seen.append(x)
        """)
    assert f.code == "RA302"
    assert f.severity is Severity.ERROR
    assert "allreduce" in f.message


def test_augassign_via_global_ra302():
    (f,) = lint("""\
        totals = []
        class C:
            def go(self, x):
                global totals
                totals += [x]
        """)
    assert f.code == "RA302"


def test_non_step_methods_are_not_rank_code():
    assert lint("""\
        class C:
            cfg = {}
            def configure(self):
                C.cfg['x'] = 1
        """) == []


def test_instance_state_is_fine():
    assert lint("""\
        class C:
            def go(self):
                self.cache = {}
                self.cache['x'] = 1
        """) == []


# ------------------------------------------------------------------- RA303
def test_guarded_write_without_publish_ra303():
    (f,) = lint("""\
        class C:
            cfg = {}
            def go(self, comm):
                if comm.rank == 0:
                    C.cfg['x'] = 1
        """)
    assert f.code == "RA303"
    assert f.severity is Severity.WARNING
    assert "stale" in f.message


def test_guarded_write_published_by_collective_is_clean():
    assert lint("""\
        class C:
            cfg = {}
            def go(self, comm):
                if comm.rank == 0:
                    C.cfg['x'] = 1
                comm.barrier()
        """) == []


def test_publish_via_bcast_result_is_clean():
    assert lint("""\
        class C:
            cfg = {}
            def go(self, comm):
                if comm.rank == 0:
                    C.cfg['x'] = 1
                value = comm.bcast(C.cfg, root=0)
        """) == []


# ------------------------------------------------------------------- RA304
def test_patch_write_over_all_patches_ra304():
    (f,) = lint("""\
        class S:
            def go(self, dobj, hier):
                for p in hier.patches:
                    dobj.array(p)[:] = 0.0
        """)
    assert f.code == "RA304"
    assert f.severity is Severity.WARNING
    assert "owned_patches" in f.message


def test_owned_patches_loop_is_clean():
    assert lint("""\
        class S:
            def go(self, dobj, hier, rank):
                for p in hier.owned_patches(rank):
                    dobj.array(p)[:] = 0.0
        """) == []


def test_owner_guard_inside_all_patches_loop_is_clean():
    assert lint("""\
        class S:
            def go(self, dobj, hier, rank):
                for p in hier.patches:
                    if p.owner == rank:
                        dobj.array(p)[:] = 0.0
        """) == []


# ------------------------------------------------------------------- RA305
def test_collective_in_rank_branch_ra305():
    (f,) = lint("""\
        class C:
            def go(self, comm):
                if comm.rank == 0:
                    comm.barrier()
        """)
    assert f.code == "RA305"
    assert f.severity is Severity.ERROR
    assert "deadlock" in f.message


def test_collective_in_else_of_rank_branch_ra305():
    assert codes(lint("""\
        class C:
            def go(self, comm):
                if comm.rank == 0:
                    pass
                else:
                    comm.reduce(1)
        """)) == ["RA305"]


def test_uniform_collective_is_clean():
    assert lint("""\
        class C:
            def go(self, comm):
                comm.barrier()
                total = comm.allreduce(1)
        """) == []


# ------------------------------------------------------------------- RA308
def test_shared_read_note_ra308():
    (f,) = lint("""\
        table = {'a': 1}
        class C:
            def go(self):
                return table['a']
        """)
    assert f.code == "RA308"
    assert f.severity is Severity.INFO


def test_constant_style_read_is_not_noted():
    assert lint("""\
        TABLE = {'a': 1}
        class C:
            def go(self):
                return TABLE['a']
        """) == []


# --------------------------------------------------- pragma and allowlist
def test_pragma_suppresses_race_findings():
    assert lint("""\
        class C:
            cfg = {}
            def go(self):
                C.cfg['x'] = 1  # scmd: shared
        """) == []


def test_allowlist_suppresses_race_findings():
    # "_log" is in the default SCMD allowlist
    assert lint("""\
        class C:
            _log = {}
            def go(self):
                C._log['x'] = 1
        """) == []


# --------------------------------------------------------- rc-script layer
def test_parameter_after_go_ra306():
    findings = analyze_script_races(
        "instantiate Driver d\ngo d\nparameter d dt 0.1\n", classes=[])
    assert codes(findings) == ["RA306"]
    assert findings[0].severity is Severity.ERROR
    assert findings[0].line == 3


def test_parameter_before_go_is_clean():
    assert analyze_script_races(
        "instantiate Driver d\nparameter d dt 0.1\ngo d\n",
        classes=[]) == []


class TallyWriter(Component):
    """Test-only component whose step method writes a shared class dict."""

    ledger = {}

    def go(self):
        TallyWriter.ledger["n"] = 1
        return 0


def test_two_reachable_writers_ra307():
    script = ("instantiate TallyWriter a\n"
              "instantiate TallyWriter b\n"
              "go a\ngo b\n")
    findings = analyze_script_races(script, classes=[TallyWriter])
    assert codes(findings) == ["RA307"]
    f = findings[0]
    assert f.severity is Severity.WARNING
    assert "TallyWriter.ledger" in f.message
    assert "a, b" in f.message


def test_single_writer_is_clean():
    script = "instantiate TallyWriter a\ngo a\n"
    assert analyze_script_races(script, classes=[TallyWriter]) == []


def test_unreachable_second_writer_is_clean():
    # b is instantiated but never wired to / run from a go target
    script = ("instantiate TallyWriter a\n"
              "instantiate TallyWriter b\n"
              "go a\n")
    assert analyze_script_races(script, classes=[TallyWriter]) == []


def test_writer_reachable_through_connect_edge_ra307():
    script = ("instantiate TallyWriter drv\n"
              "instantiate TallyWriter leaf\n"
              "connect drv out leaf in\n"
              "go drv\n")
    findings = analyze_script_races(script, classes=[TallyWriter])
    assert codes(findings) == ["RA307"]


# ------------------------------------------------------ the seeded fixture
def test_seeded_race_fixture_is_caught_statically():
    findings = analyze_file_races(str(FIXTURES / "seeded_race.py"))
    assert "RA301" in codes(findings)
    (f,) = [f for f in findings if f.code == "RA301"]
    assert "tallies" in f.message
    assert f.context == "RacyTally"
