"""Lifecycle linter: RA1xx codes, guard detection, fetch profiles."""

import pathlib
import textwrap

from repro.analysis.findings import Severity
from repro.analysis.lifecycle import (
    analyze_file,
    analyze_source,
    class_fetch_profile,
    scan_source,
)

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def lint(code):
    return analyze_source(textwrap.dedent(code), "<test>")


def codes(findings):
    return {f.code for f in findings}


def test_clean_component_is_clean():
    findings = lint("""\
        class Good:
            def set_services(self, services):
                self.services = services
                services.register_uses_port("mesh", "MeshPort")

            def run(self):
                mesh = self.services.get_port("mesh")
                try:
                    return mesh.cells()
                finally:
                    self.services.release_port("mesh")
        """)
    assert findings == []


def test_unregistered_get_port_ra101():
    findings = lint("""\
        class Bad:
            def set_services(self, services):
                self.services = services
                services.register_uses_port("mesh", "MeshPort")

            def run(self):
                return self.services.get_port("statistics")
        """)
    (f,) = [x for x in findings if x.code == "RA101"]
    assert f.line == 7
    assert "'statistics'" in f.message


def test_registration_outside_set_services_ra102():
    findings = lint("""\
        class Bad:
            def set_services(self, services):
                self.services = services

            def run(self):
                self.services.register_uses_port("late", "LatePort")
                self.services.get_port("late")
        """)
    assert "RA102" in codes(findings)


def test_leaked_checkout_ra103_and_release_silences_it():
    leaky = lint("""\
        class Leaky:
            def set_services(self, services):
                self.services = services
                services.register_uses_port("mesh", "MeshPort")

            def run(self):
                return self.services.get_port("mesh")
        """)
    assert [f.code for f in leaky if f.severity is Severity.INFO] \
        == ["RA103"]


def test_name_drift_near_miss_ra104():
    findings = lint("""\
        class Drifty:
            def set_services(self, services):
                self.services = services
                services.register_uses_port("solver", "ODESolverPort")

            def run(self):
                self.services.get_port("solvers")
                self.services.release_port("solver")
        """)
    (f,) = [x for x in findings if x.code == "RA104"]
    assert "did you mean 'solver'" in f.message


def test_registered_never_fetched_ra105():
    findings = lint("""\
        class Unused:
            def set_services(self, services):
                services.register_uses_port("spare", "SparePort")
        """)
    (f,) = [x for x in findings if x.code == "RA105"]
    assert "'spare'" in f.message


def test_nonliteral_port_name_ra106():
    findings = lint("""\
        class Dynamic:
            def set_services(self, services):
                self.services = services
                services.register_uses_port("a", "APort")

            def run(self, which):
                self.services.get_port(which)
                self.services.release_port("a")
        """)
    assert "RA106" in codes(findings)
    assert "RA101" not in codes(findings)


def test_try_except_guard_suppresses_nothing_but_marks_guarded():
    scan = scan_source(textwrap.dedent("""\
        class Guarded:
            def set_services(self, services):
                self.services = services
                services.register_uses_port("bc", "BCPort")

            def run(self):
                try:
                    bc = self.services.get_port("bc")
                except PortNotConnectedError:
                    bc = None
                return bc
        """))
    (cls,) = [c for c in scan.classes if c.name == "Guarded"]
    (fetch,) = cls.fetches
    assert fetch.guarded


def test_helper_class_resolves_against_file_union():
    findings = lint("""\
        class _Port:
            def work(self):
                return self.owner.services.get_port("mesh")

        class Owner:
            def set_services(self, services):
                self.services = services
                services.register_uses_port("mesh", "MeshPort")
                services.release_port("mesh")
        """)
    assert "RA101" not in codes(findings)


def test_file_without_registrations_is_unresolvable():
    # e.g. a bench script poking at someone else's services: no RA101
    findings = lint("""\
        class Poker:
            def poke(self, services):
                return services.get_port("anything")
        """)
    assert "RA101" not in codes(findings)


def test_not_python_reports_ra001():
    findings = analyze_source("def broken(:\n", "<bad>")
    assert [f.code for f in findings] == ["RA001"]


def test_bad_component_fixture_covers_the_codes():
    findings = analyze_file(str(FIXTURES / "bad_component.py"))
    assert {"RA101", "RA102", "RA103", "RA104", "RA105", "RA106"} \
        <= codes(findings)
    # the tidy class contributes nothing above info
    tidy = [f for f in findings if f.context == "TidyComponent"]
    assert all(f.severity is Severity.INFO for f in tidy)


def test_class_fetch_profile_guarded_vs_not():
    from repro.components import GrACEComponent, CvodeComponent

    grace = class_fetch_profile(GrACEComponent)
    assert grace.get("bc") is True and grace.get("balancer") is True
    assert class_fetch_profile(CvodeComponent).get("rhs") is False


def test_class_fetch_profile_dynamic_class_is_empty():
    cls = type("Synthetic", (), {})
    assert class_fetch_profile(cls) == {}
