"""Manifest model, extraction, merge, and the RA40x drift pass."""

import importlib.util
import json
import pathlib
import sys

import pytest

from repro.analysis.manifest import (
    ComponentManifest,
    ParamSpec,
    PortSpec,
    check_drift,
    coerce_value,
    default_manifest_dir,
    extract_manifest,
    load_manifest_dir,
    load_manifest_file,
    load_manifests,
    manifest_path,
    merge_manifest,
    value_type_ok,
    write_manifest,
)
from repro.analysis.wiring import default_classes

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def widget_cls():
    spec = importlib.util.spec_from_file_location(
        "contract_component", FIXTURES / "contract_component.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules["contract_component"] = mod
    spec.loader.exec_module(mod)
    yield mod.ContractWidget
    sys.modules.pop("contract_component", None)


def codes(findings):
    return sorted(f.code for f in findings)


# -- extraction ------------------------------------------------------------
def test_extractor_finds_ports_params_state(widget_cls):
    m = extract_manifest(widget_cls)
    assert [p.name for p in m.provides] == ["out"]
    assert {p.name: p.required for p in m.uses} == \
        {"src": True, "sink": False}
    by_name = {p.name: p for p in m.parameters}
    # helper-class read attributed to the owning component, cast-typed
    assert by_name["gain"].type == "float" and by_name["gain"].default == 1.0
    assert by_name["mode"].type == "str" and by_name["mode"].default == "fast"
    # accessor-typed read (parameters.get_int)
    assert by_name["steps"].type == "int" and by_name["steps"].default == 4
    assert m.checkpoint is True
    assert m.scmd_shared == ["cache"]
    assert m.open_parameters is False


def test_manifest_json_round_trip(widget_cls, tmp_path):
    m = extract_manifest(widget_cls)
    path = write_manifest(m, str(tmp_path))
    again = load_manifest_file(path)
    assert again.to_json() == m.to_json()


def test_merge_preserves_hand_annotations(widget_cls, tmp_path):
    m = extract_manifest(widget_cls)
    m.param("gain").min = 0.0
    m.param("gain").max = 10.0
    m.param("mode").choices = ["fast", "slow"]
    m.param("steps").required = True
    m.parameters.append(ParamSpec(name="budget", type="int", extern=True))
    write_manifest(m, str(tmp_path))
    merged = merge_manifest(
        load_manifest_file(manifest_path(str(tmp_path),
                                         "ContractWidget")),
        extract_manifest(widget_cls))
    assert merged.param("gain").min == 0.0
    assert merged.param("gain").max == 10.0
    assert merged.param("mode").choices == ["fast", "slow"]
    assert merged.param("steps").required is True
    # extern params invisible to the scan survive re-emission
    assert merged.param("budget") is not None


# -- value typing ----------------------------------------------------------
def test_value_typing_rules():
    assert value_type_ok("float", 3) and value_type_ok("float", 3.5)
    assert not value_type_ok("float", "hot")
    assert not value_type_ok("float", True)
    assert value_type_ok("int", 3) and not value_type_ok("int", 3.5)
    assert value_type_ok("bool", 1) and value_type_ok("bool", "true")
    assert not value_type_ok("bool", 2)
    assert value_type_ok("str", 0)  # components str()-coerce
    assert coerce_value("float", "1100") == "1100"  # not ok -> unchanged
    assert coerce_value("float", 1100) == 1100.0
    assert coerce_value("bool", "yes") is True
    assert coerce_value("str", 0) == "0"


# -- drift pass ------------------------------------------------------------
def _committed(widget_cls, tmp_path, mutate=None):
    m = extract_manifest(widget_cls)
    if mutate is not None:
        mutate(m)
    write_manifest(m, str(tmp_path))
    return str(tmp_path)


def test_drift_clean_on_faithful_manifest(widget_cls, tmp_path):
    d = _committed(widget_cls, tmp_path)
    assert check_drift([widget_cls], d) == []


def test_ra401_source_port_missing_from_manifest(widget_cls, tmp_path):
    def drop_port(m):
        m.uses = [p for p in m.uses if p.name != "src"]
    d = _committed(widget_cls, tmp_path, drop_port)
    assert "RA401" in codes(check_drift([widget_cls], d))


def test_ra402_source_param_missing_from_manifest(widget_cls, tmp_path):
    def drop_param(m):
        m.parameters = [p for p in m.parameters if p.name != "gain"]
    d = _committed(widget_cls, tmp_path, drop_param)
    assert "RA402" in codes(check_drift([widget_cls], d))


def test_ra403_manifest_entry_with_no_source(widget_cls, tmp_path):
    def add_ghosts(m):
        m.uses.append(PortSpec(name="ghost", type="OutPort"))
        m.parameters.append(ParamSpec(name="ghost_knob", type="int"))
    d = _committed(widget_cls, tmp_path, add_ghosts)
    found = codes(check_drift([widget_cls], d))
    assert found.count("RA403") == 2


def test_ra403_extern_param_is_exempt(widget_cls, tmp_path):
    def add_extern(m):
        m.parameters.append(ParamSpec(name="hook_knob", type="int",
                                      extern=True))
    d = _committed(widget_cls, tmp_path, add_extern)
    assert check_drift([widget_cls], d) == []


def test_ra404_type_and_default_mismatch(widget_cls, tmp_path):
    def corrupt(m):
        m.param("gain").type = "int"
        m.param("steps").default = 99
    d = _committed(widget_cls, tmp_path, corrupt)
    assert codes(check_drift([widget_cls], d)).count("RA404") == 2


def test_ra405_checkpoint_and_scmd_drift(widget_cls, tmp_path):
    def corrupt(m):
        m.checkpoint = False
        m.scmd_shared = []
    d = _committed(widget_cls, tmp_path, corrupt)
    assert codes(check_drift([widget_cls], d)).count("RA405") == 2


def test_ra406_missing_manifest(widget_cls, tmp_path):
    assert codes(check_drift([widget_cls], str(tmp_path))) == ["RA406"]


def test_ra403_stale_manifest_file(widget_cls, tmp_path):
    d = _committed(widget_cls, tmp_path)
    stale = ComponentManifest(class_name="DeletedComponent")
    write_manifest(stale, d)
    found = check_drift([widget_cls], d)
    assert codes(found) == ["RA403"]
    assert "DeletedComponent" in found[0].message


# -- the committed tree ----------------------------------------------------
def test_every_shipped_component_has_a_manifest():
    committed = load_manifest_dir()
    for cls in default_classes():
        assert cls.__name__ in committed, \
            f"{cls.__name__} has no committed manifest"


def test_committed_manifests_have_no_drift():
    findings = check_drift()
    assert findings == [], "\n".join(f.format() for f in findings)


def test_committed_manifests_are_schema_1_json():
    d = default_manifest_dir()
    for name, m in load_manifest_dir().items():
        with open(manifest_path(d, name), encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["schema"] == 1
        assert doc["class"] == name


def test_load_manifests_caches_and_refreshes():
    first = load_manifests()
    assert load_manifests() is first
    assert load_manifests(refresh=True) is not first
