"""SCMD shared-state analyzer: RA2xx codes, allowlist, pragma."""

import pathlib
import textwrap

from repro.analysis.findings import Severity
from repro.analysis.scmd_safety import (
    DEFAULT_ALLOWLIST,
    analyze_file,
    analyze_source,
)

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def lint(code, **kw):
    return analyze_source(textwrap.dedent(code), "<test>", **kw)


def codes(findings):
    return {f.code for f in findings}


def test_module_level_mutable_ra201():
    (f,) = lint("cache = {}\n")
    assert f.code == "RA201"
    assert f.severity is Severity.WARNING
    assert "scmd: shared" in f.message


def test_constant_style_name_downgrades_to_ra204():
    (f,) = lint("TABLE = {'a': 1}\n")
    assert f.code == "RA204"
    assert f.severity is Severity.INFO
    (f,) = lint("_PRIVATE_TABLE = [1, 2]\n")
    assert f.code == "RA204"


def test_immutable_module_state_is_fine():
    assert lint("x = 3\nname = 'hi'\npair = (1, 2)\n") == []


def test_mutable_constructor_calls_flagged():
    assert codes(lint("buf = np.zeros(10)\n")) == {"RA201"}
    assert codes(lint("items = list()\n")) == {"RA201"}
    assert codes(lint("q = deque()\n")) == {"RA201"}


def test_allowlist_and_pragma_suppress():
    assert lint("_log = {}\n") == []          # default allowlist
    assert lint("shared = {}  # scmd: shared\n") == []
    assert lint("mine = {}\n",
                allowlist=DEFAULT_ALLOWLIST | {"mine"}) == []


def test_mutable_class_attribute_ra202():
    (f,) = lint("""\
        class C:
            history = []
        """)
    assert f.code == "RA202"
    assert "C.history" in f.message


def test_class_attr_write_in_go_ra203():
    findings = lint("""\
        class C:
            def go(self):
                C.state = 1
                self.__class__.other = 2
        """)
    assert [f.code for f in findings] == ["RA203", "RA203"]


def test_module_state_mutation_in_step_ra203():
    findings = lint("""\
        _cache = {}  # scmd: shared

        class C:
            def step(self):
                _cache["k"] = 1
                _cache.update(a=2)
        """)
    # the pragma silences the *binding*, not writes from rank code
    assert [f.code for f in findings if f.line in (5, 6)] \
        == ["RA203", "RA203"]


def test_mutation_outside_step_methods_not_flagged():
    assert lint("""\
        registry = {}

        class C:
            def configure(self):
                registry["k"] = 1
        """) == []


def test_instance_state_is_fine():
    assert lint("""\
        class C:
            def go(self):
                self.results = []
                self.results.append(1)
        """) == []


def test_class_level_mutating_calls_ra203():
    findings = lint("""\
        class C:
            seen = set()  # scmd: shared
            cfg = {}  # scmd: shared

            def go(self):
                C.seen.add(1)
                self.__class__.cfg.update(a=2)
                self.cfg.setdefault("k", 3)
        """)
    assert [f.code for f in findings] == ["RA203"] * 3


def test_self_attr_mutation_of_class_mutable_ra203():
    findings = lint("""\
        class C:
            tallies = {}  # scmd: shared
            history = []  # scmd: shared

            def step(self):
                self.tallies["k"] = 1
                self.history += [2]
                self.history.append(3)
        """)
    assert [f.code for f in findings] == ["RA203"] * 3


def test_self_attr_shadowed_by_instance_assignment_is_fine():
    # a plain ``self.attr = ...`` anywhere in the method means the
    # instance owns a private object — later mutations are rank-local
    assert lint("""\
        class C:
            history = []  # scmd: shared

            def go(self):
                self.history = []
                self.history.append(1)
        """) == []


def test_augassign_on_class_attr_ra203():
    findings = lint("""\
        class C:
            total = []  # scmd: shared

            def go(self):
                C.total += [1]
        """)
    assert [f.code for f in findings] == ["RA203"]


def test_pragma_matches_multiline_statement():
    assert lint("""\
        table = {
            "a": 1,
        }  # scmd: shared
        """) == []
    assert lint("""\
        table = {  # scmd: shared — config replicated read-only
            "a": 1,
        }
        """) == []


def test_pragma_tolerates_spacing_and_trailing_comments():
    assert lint("shared = {}  #scmd:shared\n") == []
    assert lint("shared = {}  # scmd : shared (why: singleton)\n") == []
    # but unrelated comments do not opt out
    assert codes(lint("shared = {}  # some note\n")) == {"RA201"}


def test_bad_scmd_fixture_covers_the_codes():
    findings = analyze_file(str(FIXTURES / "bad_scmd.py"))
    assert {"RA201", "RA202", "RA203", "RA204"} == codes(findings)
    assert len([f for f in findings if f.code == "RA203"]) == 5
    # _log (allowlisted) and the pragma'd lines stay silent
    assert not [f for f in findings if f.context in ("_log", "shared_ok")]
