"""Meta-test: everything we ship analyzes clean.

The analyzer is only trustworthy if the shipped artifacts — every
example, every rc-script, the three paper assemblies, and the component
packages themselves — pass their own pre-flight check with no findings
at error severity (and nothing above info for the assemblies' wiring).
"""

import pathlib

import pytest

from repro.analysis import analyze_target, wiring
from repro.analysis.findings import Report, Severity
from repro.apps.assemblies import IGNITION0D_SCRIPT

REPO = pathlib.Path(__file__).resolve().parents[2]

EXAMPLES = sorted((REPO / "examples").iterdir())


@pytest.mark.parametrize(
    "path", [p for p in EXAMPLES if p.suffix in (".py", ".rc")],
    ids=lambda p: p.name)
def test_every_example_analyzes_clean(path):
    report = Report(analyze_target(str(path)))
    assert report.at_least(Severity.ERROR) == [], report.format_text()
    assert report.at_least(Severity.WARNING) == [], report.format_text()


@pytest.mark.parametrize("name", ["ignition0d", "reaction_diffusion",
                                  "shock_interface"])
def test_every_paper_assembly_analyzes_clean(name):
    report = Report(wiring.analyze_assembly(name))
    # nothing above info: the only notes are the guarded optional ports
    assert report.at_least(Severity.WARNING) == [], report.format_text()
    for f in report.findings:
        assert f.code == "RA012"


def test_shipped_rc_script_text_analyzes_clean():
    assert wiring.analyze_script(IGNITION0D_SCRIPT) == []


@pytest.mark.parametrize("package", ["repro.components", "repro.apps",
                                     "repro.cca"])
def test_shipped_packages_have_no_errors_or_warnings(package):
    report = Report(analyze_target(package))
    assert report.at_least(Severity.WARNING) == [], report.format_text()


def test_examples_rc_matches_shipped_script_semantics():
    # the standalone .rc file must stay wiring-identical to the module
    # constant (same directives, comments aside)
    from repro.cca.script import parse_script

    file_directives = [
        (d.verb, d.args)
        for d in parse_script((REPO / "examples/ignition0d.rc").read_text())]
    const_directives = [
        (d.verb, d.args) for d in parse_script(IGNITION0D_SCRIPT)]
    assert file_directives == const_directives


# ----------------------------------------------------- RA41x contracts
@pytest.mark.parametrize(
    "path", [p for p in EXAMPLES if p.suffix == ".rc"],
    ids=lambda p: p.name)
def test_every_example_rc_passes_contracts_clean(path):
    from repro.analysis import contracts

    findings = contracts.analyze_script_file_contracts(str(path))
    assert findings == [], "\n".join(f.format() for f in findings)


@pytest.mark.parametrize("name", ["ignition0d", "reaction_diffusion",
                                  "shock_interface"])
def test_every_paper_assembly_passes_contracts_clean(name):
    from repro.analysis import contracts

    findings = contracts.analyze_assembly_contracts(name)
    assert findings == [], "\n".join(f.format() for f in findings)


def test_shipped_script_text_passes_contracts_clean():
    from repro.analysis import contracts

    assert contracts.analyze_script_contracts(IGNITION0D_SCRIPT) == []


@pytest.mark.parametrize(
    "path", [p for p in EXAMPLES if p.suffix in (".py", ".rc")],
    ids=lambda p: p.name)
def test_every_example_analyzes_clean_with_contracts(path):
    report = Report(analyze_target(str(path), check_contracts=True))
    assert report.at_least(Severity.WARNING) == [], report.format_text()
