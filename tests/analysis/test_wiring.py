"""Wiring analyzer: every RA0xx code on a small test component set."""

import pathlib

import pytest

from repro.analysis.findings import Severity
from repro.analysis.wiring import (
    analyze_assembly,
    analyze_framework,
    analyze_script,
    assembly_names,
    harvest_port_table,
)
from repro.cca import Component, Framework, Port

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


# -- a tiny component set (classes at module level so inspect.getsource
# -- feeds the fetch-profile harvest) ---------------------------------------
class HelloPort(Port):
    def hello(self):
        raise NotImplementedError


class _Hello(HelloPort):
    def hello(self):
        return "hi"


class WaveProvider(Component):
    def set_services(self, services):
        services.add_provides_port(_Hello(), "greeting")


class _GoEager(Port):
    def __init__(self, owner):
        self.owner = owner

    def go(self):
        return self.owner.services.get_port("words").hello()


class EagerUser(Component):
    """Fetches its uses port unguarded: unconnected -> RA011."""

    def set_services(self, services):
        self.services = services
        services.register_uses_port("words", "HelloPort")
        services.add_provides_port(_GoEager(self), "go")


class _GoCasual(Port):
    def __init__(self, owner):
        self.owner = owner

    def go(self):
        if self.owner.services.is_connected("maybe"):
            return self.owner.services.get_port("maybe").hello()
        return "silence"


class CasualUser(Component):
    """Guards its fetch with is_connected: unconnected -> RA012 info."""

    def set_services(self, services):
        self.services = services
        services.register_uses_port("maybe", "HelloPort")
        services.add_provides_port(_GoCasual(self), "go")


class PeerA(Component):
    def set_services(self, services):
        self.services = services
        services.register_uses_port("peer", "HelloPort")
        services.add_provides_port(_Hello(), "greeting")


class PeerB(Component):
    def set_services(self, services):
        self.services = services
        services.register_uses_port("peer", "HelloPort")
        services.add_provides_port(_Hello(), "greeting")


class Unbuildable(Component):
    def set_services(self, services):
        raise RuntimeError("sandbox says no")


CLASSES = [WaveProvider, EagerUser, CasualUser, PeerA, PeerB, Unbuildable]


def codes(findings):
    return {f.code for f in findings}


def by_code(findings, code):
    return [f for f in findings if f.code == code]


def test_clean_script_has_no_findings():
    script = """\
instantiate WaveProvider greeter
instantiate EagerUser user
connect user words greeter greeting
go user
"""
    assert analyze_script(script, CLASSES) == []


def test_harvest_port_table():
    table = harvest_port_table(EagerUser)
    assert table.uses == {"words": "HelloPort"}
    assert table.provides == {"go": "_GoEager"}
    assert table.go_ports == {"go"}
    assert table.fetch_guarded == {"words": False}
    assert harvest_port_table(CasualUser).fetch_guarded \
        == {"maybe": True}


def test_syntax_errors_accumulate_as_ra001():
    script = "bogus one\ninstantiate WaveProvider g\nconnect a b\n"
    findings = analyze_script(script, CLASSES)
    ra001 = by_code(findings, "RA001")
    assert [f.line for f in ra001] == [1, 3]


def test_unknown_class_ra002():
    findings = analyze_script("instantiate NoSuch x\n", CLASSES)
    assert "RA002" in codes(findings)


def test_duplicate_instance_ra003():
    script = ("instantiate WaveProvider g\n"
              "instantiate WaveProvider g\n")
    (f,) = by_code(analyze_script(script, CLASSES), "RA003")
    assert f.line == 2
    assert "line 1" in f.message


def test_unknown_instance_ra004():
    findings = analyze_script("parameter ghost key 1\n", CLASSES)
    assert "RA004" in codes(findings)


def test_unknown_ports_ra005():
    script = """\
instantiate WaveProvider g
instantiate EagerUser u
connect u nope g greeting
connect u words g nothing
"""
    ra005 = by_code(analyze_script(script, CLASSES), "RA005")
    assert len(ra005) == 2
    assert {f.line for f in ra005} == {3, 4}


def test_type_mismatch_ra006():
    script = """\
instantiate EagerUser greeter
instantiate EagerUser u
connect u words greeter go
go u
"""
    (f,) = by_code(analyze_script(script, CLASSES), "RA006")
    assert "HelloPort" in f.message and "_GoEager" in f.message
    assert f.line == 3


def test_use_before_instantiate_ra007():
    script = ("parameter u key 1\n"
              "instantiate EagerUser u\n")
    (f,) = by_code(analyze_script(script, CLASSES), "RA007")
    assert f.line == 1
    assert "line 2" in f.message


def test_duplicate_connection_ra008():
    script = """\
instantiate WaveProvider g
instantiate EagerUser u
connect u words g greeting
connect u words g greeting
go u
"""
    (f,) = by_code(analyze_script(script, CLASSES), "RA008")
    assert f.line == 4


def test_go_before_connect_ra009():
    script = """\
instantiate WaveProvider g
instantiate EagerUser u
go u
connect u words g greeting
"""
    (f,) = by_code(analyze_script(script, CLASSES), "RA009")
    assert f.line == 3
    assert "line 4" in f.message
    # the late connect still counts as wiring: no RA011 on top
    assert "RA011" not in codes(analyze_script(script, CLASSES))


def test_go_without_go_port_ra010():
    findings = analyze_script(
        "instantiate WaveProvider g\ngo g\n", CLASSES)
    (f,) = by_code(findings, "RA010")
    assert f.line == 2


def test_unconnected_unguarded_fetch_ra011():
    findings = analyze_script("instantiate EagerUser u\ngo u\n", CLASSES)
    (f,) = by_code(findings, "RA011")
    assert f.severity is Severity.ERROR
    assert "PortNotConnectedError" in f.message


def test_unconnected_guarded_fetch_is_info_ra012():
    findings = analyze_script("instantiate CasualUser u\ngo u\n", CLASSES)
    assert codes(findings) == {"RA012"}
    (f,) = findings
    assert f.severity is Severity.INFO


def test_cycle_ra013():
    script = """\
instantiate PeerA a
instantiate PeerB b
connect a peer b greeting
connect b peer a greeting
"""
    findings = analyze_script(script, CLASSES)
    (f,) = by_code(findings, "RA013")
    assert f.severity is Severity.WARNING
    assert "a -> b -> a" in f.message or "b -> a -> b" in f.message


def test_uninstantiable_class_ra014():
    findings = analyze_script("instantiate Unbuildable u\n", CLASSES)
    (f,) = by_code(findings, "RA014")
    assert "sandbox says no" in f.message


def test_bad_wiring_fixture_covers_the_codes():
    text = (FIXTURES / "bad_wiring.rc").read_text()
    found = codes(analyze_script(text))  # default (shipped) repository
    expected = {"RA001", "RA002", "RA003", "RA004", "RA005", "RA006",
                "RA007", "RA008", "RA009", "RA010", "RA011"}
    assert expected <= found


def test_analyze_framework_flags_dangling_unguarded():
    fw = Framework()
    fw.registry.register_many([WaveProvider, EagerUser, CasualUser])
    fw.instantiate("EagerUser", "eager")
    fw.instantiate("CasualUser", "casual")
    findings = analyze_framework(fw)
    assert {f.code for f in findings} == {"RA011", "RA012"}
    fw.instantiate("WaveProvider", "greeter")
    fw.connect("eager", "words", "greeter", "greeting")
    fw.connect("casual", "maybe", "greeter", "greeting")
    assert analyze_framework(fw) == []


def test_assembly_names_and_unknown():
    assert assembly_names() == ["ignition0d", "reaction_diffusion",
                                "shock_interface"]
    with pytest.raises(KeyError, match="unknown assembly"):
        analyze_assembly("nope")
