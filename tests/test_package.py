"""Package-level checks: version, exports, error hierarchy, docs."""

import importlib
import inspect

import pytest

import repro
from repro import errors


def test_version_string():
    assert repro.__version__ == "1.0.0"
    from repro.version import __version__

    assert __version__ == repro.__version__


SUBPACKAGES = [
    "repro.util", "repro.mpi", "repro.samr", "repro.chemistry",
    "repro.transport", "repro.integrators", "repro.hydro", "repro.cca",
    "repro.cca.ports", "repro.components", "repro.apps", "repro.bench",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackage_imports_and_documented(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 40


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        assert hasattr(mod, symbol), f"{name}.{symbol} missing"


def test_error_hierarchy_roots():
    assert issubclass(errors.CCAError, errors.ReproError)
    assert issubclass(errors.MPIError, errors.ReproError)
    assert issubclass(errors.MeshError, errors.ReproError)
    assert issubclass(errors.IntegratorError, errors.ReproError)
    assert issubclass(errors.ChemistryError, errors.ReproError)
    assert issubclass(errors.HydroError, errors.ReproError)
    assert issubclass(errors.PortNotConnectedError, errors.CCAError)
    assert issubclass(errors.ConvergenceError, errors.IntegratorError)
    assert issubclass(errors.CommAbortedError, errors.MPIError)


def test_catching_the_root_catches_everything():
    from repro.samr import Box

    with pytest.raises(errors.ReproError):
        Box((0, 0), (1,))


def test_component_table_complete():
    """Every component named in the paper's Tables 1-3 exists in the
    component package under its paper name."""
    import repro.components as comps

    for name in [
        "GrACEComponent", "Initializer", "InitialCondition",
        "ConicalInterfaceIC", "CvodeComponent", "ThermoChemistry",
        "ProblemModeler", "DPDt", "ExplicitIntegrator",
        "DiffusionPhysics", "DRFMComponent", "MaxDiffCoeffEvaluator",
        "ImplicitIntegrator", "ErrorEstAndRegrid", "StatisticsComponent",
        "ExplicitIntegratorRK2", "CharacteristicQuantities",
        "InviscidFlux", "States", "GodunovFlux", "EFMFlux",
        "BoundaryConditions", "GasProperties", "ProlongRestrict",
    ]:
        assert hasattr(comps, name), name
        cls = getattr(comps, name)
        assert cls in comps.ALL_COMPONENTS


def test_public_components_documented():
    import repro.components as comps
    from repro.cca import Component

    for cls in comps.ALL_COMPONENTS:
        assert issubclass(cls, Component)
        assert cls.__doc__ and cls.__doc__.strip(), cls.__name__
        # instantiable without constructor arguments (script requirement)
        sig = inspect.signature(cls)
        required = [p for p in sig.parameters.values()
                    if p.default is p.empty
                    and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)]
        assert not required, f"{cls.__name__} needs ctor args"
