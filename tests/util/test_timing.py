"""Tests for stopwatch/CPU timers used by the virtual-time machinery."""

import pytest

from repro.util import Stopwatch, ThreadCpuTimer


def test_stopwatch_accumulates():
    sw = Stopwatch()
    with sw:
        pass
    first = sw.elapsed
    with sw:
        sum(range(1000))
    assert sw.elapsed >= first >= 0.0


def test_stopwatch_double_start_raises():
    sw = Stopwatch().start()
    with pytest.raises(RuntimeError):
        sw.start()
    sw.stop()
    with pytest.raises(RuntimeError):
        sw.stop()


def test_stopwatch_reset():
    sw = Stopwatch()
    with sw:
        pass
    sw.reset()
    assert sw.elapsed == 0.0 and not sw.running


def test_stopwatch_running_property():
    sw = Stopwatch()
    assert not sw.running
    with sw:
        assert sw.running
    assert not sw.running


def test_stopwatch_custom_clock():
    ticks = iter([10.0, 13.5])
    sw = Stopwatch(clock=lambda: next(ticks))
    with sw:
        pass
    assert sw.elapsed == pytest.approx(3.5)


def test_thread_cpu_timer_counts_own_work():
    t = ThreadCpuTimer()
    with t:
        x = 0
        for i in range(200_000):
            x += i
    assert t.elapsed > 0.0


def test_thread_cpu_timer_misuse_raises():
    t = ThreadCpuTimer()
    with pytest.raises(RuntimeError):
        t.stop()
    t.start()
    with pytest.raises(RuntimeError):
        t.start()
