"""Tests for rank-tagged logging."""

import logging

from repro.util import get_logger
from repro.util.logging import get_rank, set_rank


def test_logger_namespace():
    log = get_logger("samr.ghost")
    assert log.name == "repro.samr.ghost"
    log2 = get_logger("repro.mpi")
    assert log2.name == "repro.mpi"


def test_rank_tagging_thread_local():
    import threading

    seen = {}

    def worker(rank):
        set_rank(rank)
        seen[rank] = get_rank()

    threads = [threading.Thread(target=worker, args=(r,)) for r in (1, 2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert seen == {1: 1, 2: 2}
    assert get_rank() is None  # main thread untouched


def test_log_record_carries_rank(caplog):
    log = get_logger("test.rank")
    set_rank(7)
    try:
        with caplog.at_level(logging.WARNING, logger="repro"):
            log.warning("hello")
        assert caplog.records
        assert caplog.records[-1].rank == "[rank 7]"
    finally:
        set_rank(None)
