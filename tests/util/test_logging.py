"""Tests for rank-tagged logging."""

import logging

from repro.util import get_logger
from repro.util.logging import get_rank, rank_context, set_rank


def test_logger_namespace():
    log = get_logger("samr.ghost")
    assert log.name == "repro.samr.ghost"
    log2 = get_logger("repro.mpi")
    assert log2.name == "repro.mpi"


def test_rank_tagging_thread_local():
    import threading

    seen = {}

    def worker(rank):
        set_rank(rank)
        seen[rank] = get_rank()

    threads = [threading.Thread(target=worker, args=(r,)) for r in (1, 2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert seen == {1: 1, 2: 2}
    assert get_rank() is None  # main thread untouched


def test_rank_context_sets_and_restores():
    assert get_rank() is None
    with rank_context(3):
        assert get_rank() == 3
        with rank_context(5):  # nesting restores the outer tag
            assert get_rank() == 5
        assert get_rank() == 3
    assert get_rank() is None


def test_rank_context_restores_on_exception():
    set_rank(1)
    try:
        try:
            with rank_context(9):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert get_rank() == 1
    finally:
        set_rank(None)


def test_mpirun_tags_rank_threads_automatically():
    from repro.mpi import ZERO_COST, mpirun

    ranks = mpirun(3, lambda comm: get_rank(), machine=ZERO_COST)
    assert ranks == [0, 1, 2]
    assert get_rank() is None


def test_mpirun_single_rank_inline_restores_callers_tag():
    from repro.mpi import ZERO_COST, mpirun

    set_rank(42)  # pretend the caller is itself a tagged rank-thread
    try:
        assert mpirun(1, lambda comm: get_rank(),
                      machine=ZERO_COST) == [0]
        assert get_rank() == 42
    finally:
        set_rank(None)


def test_log_record_carries_rank(caplog):
    log = get_logger("test.rank")
    set_rank(7)
    try:
        with caplog.at_level(logging.WARNING, logger="repro"):
            log.warning("hello")
        assert caplog.records
        assert caplog.records[-1].rank == "[rank 7]"
    finally:
        set_rank(None)
