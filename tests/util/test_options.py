"""Tests for the Options key-value bag (backing Database components)."""

import pytest

from repro.util import Options


def test_set_get_roundtrip():
    o = Options()
    o.set("mesh.size", 100)
    assert o.get("mesh.size") == 100
    assert "mesh.size" in o
    assert len(o) == 1


def test_initial_mapping_and_update():
    o = Options({"a": 1})
    o.update({"b": 2, "a": 3})
    assert o.get("a") == 3 and o.get("b") == 2


def test_get_default():
    assert Options().get("missing", 42) == 42
    assert Options().get("missing") is None


def test_require_raises_with_known_keys():
    o = Options({"x": 1})
    with pytest.raises(KeyError, match="known: x"):
        o.require("y")


def test_typed_accessors_coerce_strings():
    o = Options({"n": "12", "dt": "0.5", "flag": "true", "name": 7})
    assert o.get_int("n") == 12
    assert o.get_float("dt") == 0.5
    assert o.get_bool("flag") is True
    assert o.get_str("name") == "7"


@pytest.mark.parametrize("raw,expected", [
    ("yes", True), ("on", True), ("1", True),
    ("no", False), ("off", False), ("0", False), ("FALSE", False),
])
def test_bool_spellings(raw, expected):
    assert Options({"f": raw}).get_bool("f") is expected


def test_bool_garbage_raises():
    with pytest.raises(ValueError):
        Options({"f": "maybe"}).get_bool("f")


def test_typed_accessor_missing_raises():
    with pytest.raises(KeyError):
        Options().get_int("n")
    with pytest.raises(KeyError):
        Options().get_float("x")


def test_empty_key_rejected():
    with pytest.raises(KeyError):
        Options().set("", 1)


def test_remove_and_iteration():
    o = Options({"a": 1, "b": 2})
    o.remove("a")
    assert sorted(o) == ["b"]
    with pytest.raises(KeyError):
        o.remove("a")


def test_copy_is_independent():
    o = Options({"a": 1})
    c = o.copy()
    c.set("a", 2)
    assert o.get("a") == 1


def test_as_dict_snapshot():
    o = Options({"a": 1})
    d = o.as_dict()
    d["a"] = 99
    assert o.get("a") == 1


def test_fast_mode_env(monkeypatch):
    from repro.util import fast_mode

    monkeypatch.setenv("REPRO_FAST", "1")
    assert fast_mode()
    monkeypatch.setenv("REPRO_FAST", "0")
    assert not fast_mode()
    monkeypatch.delenv("REPRO_FAST")
    assert not fast_mode()
