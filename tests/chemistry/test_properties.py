"""Property-based tests (hypothesis) on thermochemistry invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chemistry import h2_air_mechanism, h2_lite_mechanism
from repro.chemistry.nasa7 import R_UNIVERSAL
from repro.chemistry.reaction import P_REF

MECH = h2_air_mechanism()
LITE = h2_lite_mechanism()

temps = st.floats(300.0, 3000.0, allow_nan=False)


def random_composition(draw, mech, ints):
    raw = np.array([draw(ints) for _ in range(mech.n_species)], dtype=float)
    raw += 1.0
    return raw / raw.sum()


comp_ints = st.integers(0, 50)


@settings(max_examples=40, deadline=None)
@given(temps)
def test_cp_positive_everywhere(T):
    for sp in MECH.species:
        assert sp.thermo.cp_R(T) > 0.0


@settings(max_examples=40, deadline=None)
@given(temps)
def test_enthalpy_increases_with_temperature(T):
    dT = 10.0
    for sp in MECH.species:
        assert sp.thermo.h_mol(T + dT) > sp.thermo.h_mol(T)


@settings(max_examples=30, deadline=None)
@given(temps, st.data())
def test_mass_conservation_of_wdot(T, data):
    """Sum_i wdot_i W_i = 0 for arbitrary states (element conservation)."""
    comp = random_composition(data.draw, MECH, comp_ints)
    rho = MECH.density(T, 101325.0, comp)
    C = MECH.concentrations(rho, comp)
    wdot = MECH.wdot(np.array(T), C)
    scale = max(1e-30, float(np.abs(wdot * MECH.weights).max()))
    assert abs(float(np.dot(wdot, MECH.weights))) < 1e-10 * scale


@settings(max_examples=30, deadline=None)
@given(temps, st.data())
def test_ideal_gas_roundtrip(T, data):
    comp = random_composition(data.draw, MECH, comp_ints)
    P = 101325.0
    rho = MECH.density(T, P, comp)
    assert MECH.pressure(T, rho, comp) == pytest.approx(P, rel=1e-12)


@settings(max_examples=30, deadline=None)
@given(temps, st.data())
def test_cp_greater_than_cv(T, data):
    comp = random_composition(data.draw, MECH, comp_ints)
    assert MECH.cp_mass(T, comp) > MECH.cv_mass(T, comp) > 0.0


@settings(max_examples=20, deadline=None)
@given(temps)
def test_equilibrium_constant_detailed_balance_all_reactions(T):
    """kr = kf/Kc with Kc from Gibbs energies: at a composition built to
    satisfy Kc for a given reaction, its net rate vanishes."""
    g_RT = np.stack([sp.thermo.g_RT(np.array([T])) for sp in MECH.species])
    for j, rxn in enumerate(MECH.reactions):
        if not rxn.reversible:
            continue
        dg = float((MECH.nu_net[:, j][:, None] * g_RT).sum())
        ln_kc = -dg - rxn.delta_nu() * np.log(R_UNIVERSAL * T / P_REF)
        # avoid overflow pathologies for very large |ln Kc|
        if abs(ln_kc) > 80:
            continue
        kc = np.exp(ln_kc)
        # construct concentrations: reactants at 1, products scaled
        C = np.full((MECH.n_species, 1), 1e-12)
        for nm, nu in rxn.reactants.items():
            C[MECH.species_index(nm)] = 1.0
        n_prod = sum(rxn.products.values())
        for nm, nu in rxn.products.items():
            C[MECH.species_index(nm)] = kc ** (1.0 / n_prod)
        q = MECH.progress_rates(np.array([T]), C)
        kf = rxn.rate.k(T)
        if rxn.falloff is not None or rxn.has_third_body:
            continue  # third-body factor scales both directions equally
        assert abs(q[j, 0]) < 1e-6 * max(kf, 1.0)


@settings(max_examples=25, deadline=None)
@given(temps, st.data())
def test_lite_mech_subset_consistency(T, data):
    """Species shared between the mechanisms carry identical thermo."""
    for nm in LITE.names:
        k9 = MECH.species_index(nm)
        k8 = LITE.species_index(nm)
        assert MECH.species[k9].thermo.h_RT(T) == pytest.approx(
            LITE.species[k8].thermo.h_RT(T))
        assert MECH.weights[k9] == LITE.weights[k8]


@settings(max_examples=20, deadline=None)
@given(st.floats(500.0, 2500.0), st.data())
def test_source_terms_energy_consistency(T, data):
    """Constant-pressure heat release: rho*cp*dT/dt = -sum h_i wdot_i W_i
    (the ThermoChemistry closure is self-consistent)."""
    from repro.cca import BuilderService, Framework
    from repro.components import ThermoChemistry

    comp = random_composition(data.draw, MECH, comp_ints)
    f = Framework()
    BuilderService(f).create(ThermoChemistry, "tc")
    chem = f.services_of("tc").provides["chemistry"][0]
    dT, dY = chem.source_terms(np.array(T), comp)
    rho = MECH.density(T, 101325.0, comp)
    cp = MECH.cp_mass(T, comp)
    h = MECH.h_mass_species(np.array(T))
    lhs = float(rho * cp * dT)
    rhs = -float(np.einsum("i,i->", h, dY) * rho)
    assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-12)
