"""Tests for reactions, mechanisms and reactor RHS: balance checking,
equilibrium consistency, heat release sign, dP/dt closure."""

import numpy as np
import pytest

from repro.chemistry import (
    Arrhenius,
    ConstantPressureReactor,
    ConstantVolumeReactor,
    Mechanism,
    Reaction,
    h2_air_mechanism,
    h2_lite_mechanism,
)
from repro.chemistry.h2_air import stoichiometric_h2_air
from repro.chemistry.reaction import CAL_TO_J, Falloff
from repro.chemistry.thermo_data import make_species
from repro.errors import ChemistryError


# ------------------------------------------------------------- Arrhenius
def test_arrhenius_temperature_dependence():
    k = Arrhenius(A=1e10, b=0.0, Ea=50e3)
    assert k.k(2000.0) > k.k(1000.0) > k.k(500.0)


def test_arrhenius_zero_ea_power_law():
    k = Arrhenius(A=2.0, b=1.0, Ea=0.0)
    assert k.k(300.0) == pytest.approx(600.0)


def test_from_cgs_units():
    # bimolecular: cm^3/mol/s -> m^3/mol/s is 1e-6
    k = Arrhenius.from_cgs(1e12, 0.0, 1000.0, order=2)
    assert k.A == pytest.approx(1e6)
    assert k.Ea == pytest.approx(1000.0 * CAL_TO_J)
    # unimolecular: no volume factor
    assert Arrhenius.from_cgs(1e12, 0.0, 0.0, order=1).A == pytest.approx(1e12)


# ------------------------------------------------------------- Reactions
def test_reaction_validation():
    with pytest.raises(ChemistryError):
        Reaction({}, {"H": 1}, Arrhenius(1.0))
    with pytest.raises(ChemistryError):
        Reaction({"H": 0}, {"H": 1}, Arrhenius(1.0))
    with pytest.raises(ChemistryError):
        Reaction({"H2": 1}, {"H": 2}, Arrhenius(1.0),
                 falloff=Falloff(Arrhenius(1.0)))  # falloff w/o 3rd body


def test_reaction_equation_string():
    r = Reaction({"H": 1, "O2": 1}, {"OH": 2}, Arrhenius(1.0),
                 third_body={"H2O": 12.0})
    assert r.equation() == "H + O2 + M <=> 2 OH + M"
    assert r.delta_nu() == 0


def test_unbalanced_reaction_caught_by_mechanism():
    sp = [make_species(n) for n in ("H2", "H")]
    bad = Reaction({"H2": 1}, {"H": 1}, Arrhenius(1.0))
    with pytest.raises(ChemistryError, match="unbalanced"):
        Mechanism("bad", sp, [bad])


def test_mechanism_rejects_unknown_species():
    sp = [make_species("H2")]
    r = Reaction({"H2": 1}, {"H": 2}, Arrhenius(1.0))
    with pytest.raises(ChemistryError, match="unknown"):
        Mechanism("bad", sp, [r])


# ------------------------------------------------------------- Mechanisms
def test_h2_air_shape():
    m = h2_air_mechanism()
    assert m.n_species == 9
    assert m.n_reactions == 19
    assert m.names[0] == "H2" and "N2" in m.names


def test_h2_lite_shape():
    m = h2_lite_mechanism()
    assert m.n_species == 8
    assert m.n_reactions == 5


def test_stoichiometric_mixture():
    Y = stoichiometric_h2_air()
    assert sum(Y.values()) == pytest.approx(1.0)
    # fuel-air ratio: Y_H2 ~ 0.0285 for stoichiometric H2-air
    assert Y["H2"] == pytest.approx(0.0285, rel=0.02)


def test_mean_weight_and_density():
    m = h2_air_mechanism()
    Y = np.zeros(9)
    Y[m.species_index("N2")] = 1.0
    assert m.mean_weight(Y) == pytest.approx(28.013e-3, rel=1e-3)
    rho = m.density(300.0, 101325.0, Y)
    assert rho == pytest.approx(1.138, rel=0.01)  # N2 at 300 K, 1 atm
    assert m.pressure(300.0, rho, Y) == pytest.approx(101325.0)


def test_concentrations_sum_to_molar_density():
    m = h2_air_mechanism()
    Y = _stoich_vec(m)
    rho = m.density(1000.0, 101325.0, Y)
    C = m.concentrations(rho, Y)
    # ideal gas: total concentration = P / RT
    assert C.sum() == pytest.approx(101325.0 / (8.314462 * 1000.0), rel=1e-4)


def test_cp_cv_relation():
    m = h2_air_mechanism()
    Y = _stoich_vec(m)
    cp = m.cp_mass(1000.0, Y)
    cv = m.cv_mass(1000.0, Y)
    W = m.mean_weight(Y)
    assert cp - cv == pytest.approx(8.3144626 / W, rel=1e-8)
    assert cp > cv > 0


def test_wdot_conserves_mass():
    """Sum_i wdot_i * W_i = 0 (element conservation implies mass)."""
    m = h2_air_mechanism()
    Y = _stoich_vec(m, seed_radicals=True)
    rho = m.density(1500.0, 101325.0, Y)
    C = m.concentrations(rho, Y)
    wdot = m.wdot(1500.0, C)
    assert abs(float(np.dot(wdot, m.weights))) < 1e-8 * np.abs(
        wdot * m.weights).max()


def test_wdot_zero_without_radicals_at_low_T():
    """A cold pure H2/O2/N2 mixture barely reacts (chain not started)."""
    m = h2_air_mechanism()
    Y = _stoich_vec(m)
    rho = m.density(300.0, 101325.0, Y)
    C = m.concentrations(rho, Y)
    wdot = m.wdot(300.0, C)
    assert np.abs(wdot).max() < 1e-6


def test_wdot_vectorized_over_cells():
    m = h2_lite_mechanism()
    Y = np.tile(_stoich_vec(m, seed_radicals=True)[:, None], (1, 5))
    T = np.linspace(1000.0, 1400.0, 5)
    rho = m.density(T, 101325.0, Y)
    C = m.concentrations(rho, Y)
    wdot = m.wdot(T, C)
    assert wdot.shape == (8, 5)
    # the seeded H atom is consumed (chain initiation), faster when hotter
    iH = m.species_index("H")
    assert wdot[iH, -1] < wdot[iH, 0] < 0.0
    # products O and OH appear
    assert wdot[m.species_index("OH"), -1] > 0.0


def test_equilibrium_detailed_balance():
    """At equilibrium composition of a single reversible reaction the net
    progress rate vanishes: build C so that Kc is matched exactly."""
    m = h2_air_mechanism()
    T = 1500.0
    # reaction 2: O + H2 <=> H + OH (all bimolecular, delta_nu = 0)
    rxn = m.reactions[1]
    g = {nm: make_species(nm).thermo.g_RT(T) for nm in
         ("O", "H2", "H", "OH")}
    ln_kc = -(g["H"] + g["OH"] - g["O"] - g["H2"])
    kc = np.exp(ln_kc)
    # choose concentrations with [H][OH]/([O][H2]) = Kc
    C = np.zeros((9, 1))
    C[m.species_index("O")] = 1.0
    C[m.species_index("H2")] = 1.0
    C[m.species_index("H")] = np.sqrt(kc)
    C[m.species_index("OH")] = np.sqrt(kc)
    q = m.progress_rates(np.array([T]), C)
    assert abs(q[1, 0]) < 1e-10 * m.reactions[1].rate.k(T)


# ------------------------------------------------------------- reactors
def _stoich_vec(m, seed_radicals=False):
    Y = np.zeros(m.n_species)
    st = stoichiometric_h2_air()
    for nm, val in st.items():
        if nm in m.names:
            Y[m.species_index(nm)] = val
    if seed_radicals:
        iH = m.species_index("H")
        Y[iH] = 1e-5
        Y /= Y.sum()
    return Y


def test_constant_pressure_reactor_heats_up():
    m = h2_air_mechanism()
    r = ConstantPressureReactor(m, 101325.0)
    y0 = r.initial_state(1200.0, _stoich_vec(m, seed_radicals=True))
    dy = r.rhs(0.0, y0)
    assert r.nfe == 1
    assert dy.shape == (10,)
    T, Y = r.unpack(y0)
    assert T == 1200.0 and Y.sum() == pytest.approx(1.0)
    # chain initiation: the H seed is consumed, O and OH are produced
    assert dy[1 + m.species_index("H")] < 0.0
    assert dy[1 + m.species_index("O")] > 0.0
    assert dy[1 + m.species_index("OH")] > 0.0


def test_constant_pressure_mass_fraction_sum_invariant():
    m = h2_air_mechanism()
    r = ConstantPressureReactor(m, 101325.0)
    y0 = r.initial_state(1400.0, _stoich_vec(m, seed_radicals=True))
    dy = r.rhs(0.0, y0)
    assert abs(dy[1:].sum()) < 1e-10 * max(1.0, np.abs(dy[1:]).max())


def test_constant_volume_reactor_state_layout():
    m = h2_air_mechanism()
    r = ConstantVolumeReactor(m, 1000.0, 101325.0, _stoich_vec(m))
    y0 = r.initial_state()
    assert y0.shape == (11,)  # T + 9 species + P
    T, Y, P = r.unpack(y0)
    assert T == 1000.0 and P == 101325.0


def test_constant_volume_dpdt_consistent_with_eos():
    """dP/dt from the closure must match d/dt of the ideal-gas EOS."""
    m = h2_air_mechanism()
    r = ConstantVolumeReactor(m, 1400.0, 101325.0,
                              _stoich_vec(m, seed_radicals=True))
    y0 = r.initial_state()
    dy = r.rhs(0.0, y0)
    eps = 1e-9
    y1 = y0 + eps * dy
    P0 = m.pressure(y0[0], r.rho, y0[1:-1])
    P1 = m.pressure(y1[0], r.rho, np.clip(y1[1:-1], 0, None))
    fd = (P1 - P0) / eps
    assert dy[-1] == pytest.approx(fd, rel=1e-4)


def test_reactor_rejects_bad_inputs():
    m = h2_lite_mechanism()
    with pytest.raises(ChemistryError):
        ConstantPressureReactor(m, -1.0)
    r = ConstantPressureReactor(m, 101325.0)
    with pytest.raises(ChemistryError):
        r.initial_state(300.0, np.ones(m.n_species))  # sums to 8
    with pytest.raises(ChemistryError):
        r.initial_state(300.0, np.ones(3))
    with pytest.raises(ChemistryError):
        ConstantVolumeReactor(m, -5.0, 101325.0, _stoich_vec(m))
