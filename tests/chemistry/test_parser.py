"""Tests for the Chemkin-flavoured deck parser."""

import numpy as np
import pytest

from repro.chemistry import h2_lite_mechanism
from repro.chemistry.parser import parse_mechanism
from repro.errors import ChemistryError

LITE_DECK = """
! the 8-species / 5-reaction light mechanism as a text deck
ELEMENTS H O N END
SPECIES H2 O2 O OH H2O H HO2 N2 END
REACTIONS
H + O2 <=> O + OH          1.915E+14  0.00  1.6440E+04
O + H2 <=> H + OH          5.080E+04  2.67  6.2900E+03
H2 + OH <=> H2O + H        2.160E+08  1.51  3.4300E+03
H + O2 + M <=> HO2 + M     6.366E+20 -1.72  5.2480E+02
    H2 / 2.5 /  H2O / 12.0 /
HO2 + H <=> 2 OH           7.079E+13  0.00  2.9500E+02
END
"""


def test_parse_lite_deck_structure():
    mech = parse_mechanism(LITE_DECK, name="lite-from-deck")
    assert mech.n_species == 8
    assert mech.n_reactions == 5
    assert mech.names == ["H2", "O2", "O", "OH", "H2O", "H", "HO2", "N2"]
    r4 = mech.reactions[3]
    assert r4.has_third_body
    assert r4.third_body == {"H2": 2.5, "H2O": 12.0}
    r5 = mech.reactions[4]
    assert r5.products == {"OH": 2}


def test_parsed_deck_matches_builtin_rates():
    """The deck above encodes exactly the built-in lite mechanism: rate
    constants must agree at any temperature."""
    parsed = parse_mechanism(LITE_DECK)
    builtin = h2_lite_mechanism()
    T = 1500.0
    for rp, rb in zip(parsed.reactions, builtin.reactions):
        assert rp.rate.k(T) == pytest.approx(rb.rate.k(T), rel=1e-12)
    # and therefore identical source terms
    Y = np.full(8, 1.0 / 8.0)
    rho = builtin.density(T, 101325.0, Y)
    C = builtin.concentrations(rho, Y)
    np.testing.assert_allclose(parsed.wdot(T, C), builtin.wdot(T, C),
                               rtol=1e-10)


def test_falloff_reaction_parsed():
    deck = """
SPECIES H O2 HO2 H2 H2O N2 END
REACTIONS
H + O2 (+M) <=> HO2 (+M)   1.475E+12  0.60  0.0
    LOW / 6.366E+20 -1.72 524.8 /
    H2 / 2.5 /  H2O / 12.0 /
END
"""
    mech = parse_mechanism(deck)
    rxn = mech.reactions[0]
    assert rxn.falloff is not None
    assert rxn.falloff.low.b == pytest.approx(-1.72)
    assert rxn.third_body["H2O"] == 12.0


def test_irreversible_arrow():
    deck = """
SPECIES H2 H N2 END
REACTIONS
H2 + M => H + H + M   4.577E+19 -1.40 1.0438E+05
END
"""
    mech = parse_mechanism(deck)
    assert not mech.reactions[0].reversible


@pytest.mark.parametrize("bad,msg", [
    ("SPECIES XX END\nREACTIONS\nEND", "no thermo data"),
    ("REACTIONS\nLOW / 1 2 3 /\nEND", "LOW without"),
    ("SPECIES H2 END\nREACTIONS\nH2 + M <=> H + H 1 0 0\nEND",
     "both sides"),
    ("", "no species"),
])
def test_parser_error_reporting(bad, msg):
    with pytest.raises(ChemistryError, match=msg):
        parse_mechanism(bad)


def test_unbalanced_deck_caught():
    deck = """
SPECIES H2 H N2 END
REACTIONS
H2 <=> H  1.0E+10 0.0 0.0
END
"""
    with pytest.raises(ChemistryError, match="unbalanced"):
        parse_mechanism(deck)
