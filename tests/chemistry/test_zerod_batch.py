"""Batched constant-volume solves: shape contracts and the bitwise
equivalence guarantee against the assembled component path."""

import numpy as np
import pytest

from repro.apps.ignition0d import run_ignition0d, run_ignition0d_batch
from repro.chemistry.h2_lite import h2_lite_mechanism
from repro.chemistry.zerod import (
    ConstantVolumeReactor,
    advance_batch,
    constant_volume_rhs,
)
from repro.errors import CCAError, ChemistryError


@pytest.fixture(scope="module")
def mech():
    return h2_lite_mechanism()


def test_closure_matches_reactor_rhs_bitwise(mech):
    reactor = ConstantVolumeReactor(mech, 1100.0, 101325.0,
                                    {"H2": 0.028, "O2": 0.226,
                                     "N2": 0.746})
    rhs = constant_volume_rhs(mech, reactor.rho)
    y = reactor.initial_state()
    assert np.array_equal(rhs(0.0, y), reactor.rhs(0.0, y))


def test_advance_batch_validates_shapes(mech):
    ok = np.zeros((2, mech.n_species + 2))
    with pytest.raises(ChemistryError, match="states must be"):
        advance_batch(mech, np.ones(2), np.zeros((2, 3)), 0.0, 1e-6)
    with pytest.raises(ChemistryError, match="rhos must be"):
        advance_batch(mech, np.ones(3), ok, 0.0, 1e-6)


def test_batch_rows_are_independent(mech):
    """Adding a condition to the batch must not perturb another row."""
    base = run_ignition0d_batch([{"T0": 1000.0}], mechanism="h2-lite",
                                t_end=1e-5)
    pair = run_ignition0d_batch([{"T0": 1000.0}, {"T0": 1200.0}],
                                mechanism="h2-lite", t_end=1e-5)
    assert pair[0]["T_final"] == base[0]["T_final"]
    assert pair[0]["nfe"] == base[0]["nfe"]
    assert np.array_equal(pair[0]["Y_final"], base[0]["Y_final"])


def test_batch_is_bitwise_identical_to_assembly_run():
    conditions = [{"T0": 1000.0}, {"T0": 1150.0, "P0": 2e5}]
    batch = run_ignition0d_batch(conditions, mechanism="h2-lite",
                                 t_end=1e-5)
    for cond, got in zip(conditions, batch):
        seq = run_ignition0d(mechanism="h2-lite", t_end=1e-5, **cond)
        assert got["T_final"] == seq["T_final"]
        assert got["P_final"] == seq["P_final"]
        assert got["rho"] == seq["rho"]
        assert got["nfe"] == seq["nfe"]
        assert np.array_equal(got["Y_final"], seq["Y_final"])
        assert got["history_T"] == seq["history_T"]
        assert got["history_P"] == seq["history_P"]


def test_rate_scale_groups_solve_separately(mech):
    plain, scaled = run_ignition0d_batch(
        [{"T0": 1100.0}, {"T0": 1100.0, "rate_scale": 2.0}],
        mechanism="h2-air", t_end=1e-6, n_output=2)
    assert scaled["T_final"] != plain["T_final"]


def test_unknown_keys_rejected():
    with pytest.raises(CCAError, match="unknown batch condition"):
        run_ignition0d_batch([{"temperature": 1000.0}])
    with pytest.raises(CCAError, match="unknown mechanism"):
        run_ignition0d_batch([{}], mechanism="nope")


def test_empty_batch_is_empty():
    assert run_ignition0d_batch([]) == []
