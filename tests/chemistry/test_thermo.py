"""Tests for NASA-7 thermodynamics and species data: physical sanity
(known cp values, continuity at the range switch, Gibbs consistency)."""

import numpy as np
import pytest

from repro.chemistry import Nasa7, R_UNIVERSAL
from repro.chemistry.thermo_data import available_species, make_species
from repro.errors import ChemistryError


def test_r_universal():
    assert R_UNIVERSAL == pytest.approx(8.314462618, rel=1e-9)


def test_nasa7_validation():
    with pytest.raises(ChemistryError):
        Nasa7(low=(1.0,) * 6, high=(1.0,) * 7)
    with pytest.raises(ChemistryError):
        Nasa7(low=(1.0,) * 7, high=(1.0,) * 7, t_mid=100.0, t_min=200.0)


def test_monatomic_h_cp_is_5_half_R():
    h = make_species("H")
    for T in (300.0, 1000.0, 2500.0):
        assert h.thermo.cp_R(T) == pytest.approx(2.5, rel=1e-6)


def test_n2_cp_room_temperature():
    """N2 cp at 298 K is about 29.1 J/(mol K) (7/2 R)."""
    n2 = make_species("N2")
    assert n2.thermo.cp_mol(298.15) == pytest.approx(29.1, rel=0.01)


def test_h2o_heat_of_formation():
    """H2O enthalpy at 298.15 K ~ -241.8 kJ/mol."""
    h2o = make_species("H2O")
    assert h2o.thermo.h_mol(298.15) == pytest.approx(-241.8e3, rel=0.01)


def test_oh_heat_of_formation():
    """OH enthalpy of formation: GRI 3.0 fits give ~39.3 kJ/mol (the older
    JANAF 9.4 kcal/mol value; modern ATcT is ~37.3)."""
    oh = make_species("OH")
    assert oh.thermo.h_mol(298.15) == pytest.approx(39.3e3, rel=0.02)


def test_continuity_at_range_switch():
    """cp, h, s must be continuous at T_mid (fitted that way)."""
    for name in available_species():
        th = make_species(name).thermo
        below, above = th.t_mid - 1e-6, th.t_mid + 1e-6
        assert th.cp_R(below) == pytest.approx(th.cp_R(above), rel=1e-3)
        assert th.h_RT(below) == pytest.approx(th.h_RT(above), rel=1e-3)
        assert th.s_R(below) == pytest.approx(th.s_R(above), rel=1e-3)


def test_gibbs_identity():
    th = make_species("O2").thermo
    T = np.array([400.0, 1500.0])
    np.testing.assert_allclose(th.g_RT(T), th.h_RT(T) - th.s_R(T))


def test_vectorized_matches_scalar():
    th = make_species("H2O").thermo
    Ts = np.array([300.0, 800.0, 1200.0, 3000.0])
    vec = th.cp_R(Ts)
    for i, T in enumerate(Ts):
        assert vec[i] == pytest.approx(float(th.cp_R(T)))


def test_enthalpy_derivative_is_cp():
    """dh/dT = cp (finite-difference check)."""
    th = make_species("H2").thermo
    for T in (500.0, 1500.0):
        dT = 0.01
        dh = (th.h_mol(T + dT) - th.h_mol(T - dT)) / (2 * dT)
        assert dh == pytest.approx(th.cp_mol(T), rel=1e-5)


def test_molecular_weights():
    assert make_species("H2").weight == pytest.approx(2.016e-3, rel=1e-3)
    assert make_species("O2").weight == pytest.approx(31.999e-3, rel=1e-3)
    assert make_species("H2O").weight == pytest.approx(18.015e-3, rel=1e-3)
    assert make_species("N2").weight == pytest.approx(28.013e-3, rel=1e-3)


def test_species_composition_lookup():
    h2o2 = make_species("H2O2")
    assert h2o2.n_atoms("H") == 2 and h2o2.n_atoms("O") == 2
    assert h2o2.n_atoms("N") == 0


def test_all_nine_species_available():
    names = available_species()
    for nm in ["H2", "O2", "O", "OH", "H2O", "H", "HO2", "H2O2", "N2"]:
        assert nm in names
