"""Unit tests for the in-process MPI substrate: point-to-point semantics,
collectives, communicator splitting, and failure propagation."""

import numpy as np
import pytest

from repro.errors import MPIError
from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    Comm,
    Op,
    Status,
    World,
    ZERO_COST,
    mpirun,
)
from repro.mpi.launcher import RankFailure


def run(n, fn, **kw):
    return mpirun(n, fn, machine=ZERO_COST, **kw)


# ---------------------------------------------------------------- basics
def test_world_requires_positive_size():
    with pytest.raises(MPIError):
        World(0)


def test_single_rank_runs_inline():
    def main(comm):
        assert comm.rank == 0 and comm.size == 1
        return "ok"

    assert run(1, main) == ["ok"]


def test_ranks_see_distinct_identities():
    def main(comm):
        return (comm.rank, comm.size)

    assert run(4, main) == [(r, 4) for r in range(4)]


# ---------------------------------------------------------------- p2p
def test_send_recv_roundtrip_object():
    def main(comm):
        if comm.rank == 0:
            comm.send({"a": 1, "b": [1, 2]}, dest=1, tag=7)
            return None
        return comm.recv(source=0, tag=7)

    assert run(2, main)[1] == {"a": 1, "b": [1, 2]}


def test_send_recv_numpy_is_isolated():
    """Receiver must get a copy — mutating the sent array post-send must
    not leak (MPI buffer semantics)."""

    def main(comm):
        if comm.rank == 0:
            data = np.arange(10.0)
            comm.send(data, dest=1)
            data[:] = -1.0
            return None
        got = comm.recv(source=0)
        return got.tolist()

    assert run(2, main)[1] == list(map(float, range(10)))


def test_recv_any_source_any_tag():
    def main(comm):
        if comm.rank == 0:
            status = Status()
            got = comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=status)
            return got, status.source, status.tag
        comm.send(f"hello-{comm.rank}", dest=0, tag=comm.rank * 10)
        return None

    got, src, tag = run(2, main)[0]
    assert got == "hello-1" and src == 1 and tag == 10


def test_tag_matching_skips_nonmatching_messages():
    def main(comm):
        if comm.rank == 0:
            comm.send("first", dest=1, tag=1)
            comm.send("second", dest=1, tag=2)
            return None
        second = comm.recv(source=0, tag=2)
        first = comm.recv(source=0, tag=1)
        return (first, second)

    assert run(2, main)[1] == ("first", "second")


def test_message_order_preserved_per_sender_tag():
    def main(comm):
        if comm.rank == 0:
            for i in range(20):
                comm.send(i, dest=1, tag=3)
            return None
        return [comm.recv(source=0, tag=3) for _ in range(20)]

    assert run(2, main)[1] == list(range(20))


def test_sendrecv_pairwise_exchange_no_deadlock():
    def main(comm):
        peer = 1 - comm.rank
        return comm.sendrecv(comm.rank, dest=peer, source=peer)

    assert run(2, main) == [1, 0]


def test_isend_irecv():
    def main(comm):
        if comm.rank == 0:
            req = comm.isend(np.ones(4), dest=1)
            req.wait()
            return None
        req = comm.irecv(source=0)
        arr = req.wait()
        return float(arr.sum())

    assert run(2, main)[1] == 4.0


def test_iprobe_and_probe():
    def main(comm):
        if comm.rank == 0:
            comm.send("x", dest=1, tag=5)
            return None
        st = comm.probe(source=0)
        assert st.tag == 5 and st.source == 0
        assert comm.iprobe(source=0, tag=5)
        comm.recv(source=0, tag=5)
        assert not comm.iprobe(source=0, tag=5)
        return True

    assert run(2, main)[1] is True


def test_send_to_invalid_rank_raises():
    def main(comm):
        comm.send(1, dest=5)

    with pytest.raises(RankFailure):
        run(2, main)


# ---------------------------------------------------------------- collectives
def test_barrier_completes():
    def main(comm):
        for _ in range(3):
            comm.barrier()
        return True

    assert all(run(4, main))


def test_bcast_from_each_root():
    def main(comm):
        out = []
        for root in range(comm.size):
            obj = {"root": root} if comm.rank == root else None
            out.append(comm.bcast(obj, root=root)["root"])
        return out

    for res in run(3, main):
        assert res == [0, 1, 2]


def test_allreduce_sum_scalar_and_array():
    def main(comm):
        s = comm.allreduce(comm.rank + 1, op=Op.SUM)
        a = comm.allreduce(np.full(3, float(comm.rank)), op=Op.SUM)
        return s, a.tolist()

    for s, a in run(4, main):
        assert s == 10
        assert a == [6.0, 6.0, 6.0]


@pytest.mark.parametrize(
    "op,expect", [(Op.MIN, 0), (Op.MAX, 3), (Op.PROD, 0), (Op.SUM, 6)]
)
def test_allreduce_ops(op, expect):
    def main(comm):
        return comm.allreduce(comm.rank, op=op)

    assert run(4, main) == [expect] * 4


def test_allreduce_logical():
    def main(comm):
        any_true = comm.allreduce(comm.rank == 2, op=Op.LOR)
        all_true = comm.allreduce(comm.rank < 10, op=Op.LAND)
        return bool(any_true), bool(all_true)

    assert run(4, main) == [(True, True)] * 4


def test_reduce_only_root_gets_result():
    def main(comm):
        return comm.reduce(comm.rank, op=Op.SUM, root=1)

    res = run(3, main)
    assert res == [None, 3, None]


def test_gather_allgather():
    def main(comm):
        g = comm.gather(comm.rank * 2, root=0)
        ag = comm.allgather(comm.rank * 3)
        return g, ag

    res = run(3, main)
    assert res[0][0] == [0, 2, 4]
    assert res[1][0] is None
    assert all(r[1] == [0, 3, 6] for r in res)


def test_scatter():
    def main(comm):
        data = [f"item{i}" for i in range(comm.size)] if comm.rank == 0 else None
        return comm.scatter(data, root=0)

    assert run(3, main) == ["item0", "item1", "item2"]


def test_scatter_wrong_length_raises():
    def main(comm):
        data = [1] if comm.rank == 0 else None
        comm.scatter(data, root=0)

    with pytest.raises(RankFailure):
        run(2, main)


def test_alltoall():
    def main(comm):
        out = [f"{comm.rank}->{j}" for j in range(comm.size)]
        return comm.alltoall(out)

    res = run(3, main)
    assert res[1] == ["0->1", "1->1", "2->1"]


def test_collectives_interleave_with_p2p():
    def main(comm):
        comm.barrier()
        if comm.rank == 0:
            comm.send(42, dest=1)
        total = comm.allreduce(1, op=Op.SUM)
        got = comm.recv(source=0) if comm.rank == 1 else None
        comm.barrier()
        return total, got

    res = run(2, main)
    assert res == [(2, None), (2, 42)]


# ---------------------------------------------------------------- split/dup
def test_split_into_even_odd_cohorts():
    def main(comm):
        color = comm.rank % 2
        sub = comm.split(color)
        total = sub.allreduce(comm.rank, op=Op.SUM)
        return color, sub.rank, sub.size, total

    res = run(4, main)
    # evens: ranks 0,2 -> sum 2 ; odds: ranks 1,3 -> sum 4
    assert res[0] == (0, 0, 2, 2)
    assert res[2] == (0, 1, 2, 2)
    assert res[1] == (1, 0, 2, 4)
    assert res[3] == (1, 1, 2, 4)


def test_split_key_reorders_ranks():
    def main(comm):
        sub = comm.split(color=0, key=-comm.rank)
        return sub.rank

    assert run(3, main) == [2, 1, 0]


def test_dup_gives_independent_message_space():
    def main(comm):
        dup = comm.dup()
        if comm.rank == 0:
            comm.send("world", dest=1, tag=1)
            dup.send("dup", dest=1, tag=1)
            return None
        got_dup = dup.recv(source=0, tag=1)
        got_world = comm.recv(source=0, tag=1)
        return got_world, got_dup

    assert run(2, main)[1] == ("world", "dup")


# ---------------------------------------------------------------- failures
def test_rank_exception_aborts_world_and_reports():
    def main(comm):
        if comm.rank == 1:
            raise ValueError("boom")
        # rank 0 would block forever without abort propagation
        comm.recv(source=1)

    with pytest.raises(RankFailure) as excinfo:
        run(2, main)
    assert 1 in excinfo.value.failures
    err = excinfo.value.failures[1]
    # threads delivers the exception object itself; mp re-raises it as a
    # RemoteRankError carrying the original type name and traceback
    assert isinstance(err, ValueError) \
        or getattr(err, "remote_type", "") == "ValueError"


def test_return_values_in_rank_order():
    def main(comm):
        return comm.rank**2

    assert run(5, main) == [0, 1, 4, 9, 16]
