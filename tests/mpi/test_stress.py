"""Stress and edge-case tests for the MPI substrate: many ranks, nested
splits, mixed traffic, and per-sender ordering under contention."""

import numpy as np
import pytest

from repro.mpi import Op, ZERO_COST, mpirun


def run(n, fn, **kw):
    return mpirun(n, fn, machine=ZERO_COST, **kw)


def test_sixteen_ranks_allreduce():
    def main(comm):
        return comm.allreduce(comm.rank, op=Op.SUM)

    assert run(16, main) == [120] * 16


def test_ring_pass_large_arrays():
    """Pass a 100k-element array around a ring; every hop must preserve
    content (buffer isolation under concurrency)."""

    def main(comm):
        data = np.full(100_000, float(comm.rank))
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        got = comm.sendrecv(data, dest=right, source=left)
        assert np.all(got == float(left))
        return float(got[0])

    res = run(4, main)
    assert res == [3.0, 0.0, 1.0, 2.0]


def test_split_of_split():
    """Nested communicator splitting: quadrant cohorts."""

    def main(comm):
        half = comm.split(comm.rank // 4)        # two halves of 4
        quarter = half.split(half.rank // 2)     # four pairs
        return (half.size, quarter.size,
                quarter.allreduce(comm.rank, op=Op.SUM))

    res = run(8, main)
    for rank, (hs, qs, total) in enumerate(res):
        assert hs == 4 and qs == 2
        base = (rank // 2) * 2
        assert total == base + base + 1


def test_many_messages_per_sender_keep_order():
    def main(comm):
        if comm.rank == 0:
            for dest in range(1, comm.size):
                for i in range(50):
                    comm.send((dest, i), dest=dest, tag=9)
            return None
        got = [comm.recv(source=0, tag=9)[1] for _ in range(50)]
        return got == list(range(50))

    res = run(4, main)
    assert all(r in (None, True) for r in res)
    assert res[1] and res[2] and res[3]


def test_mixed_collectives_and_p2p_interleaving():
    """Randomized but deterministic interleaving of barriers, reductions
    and point-to-point must not deadlock or corrupt payloads."""

    def main(comm):
        acc = 0
        for round_no in range(10):
            acc += comm.allreduce(1, op=Op.SUM)
            peer = (comm.rank + round_no) % comm.size
            if peer != comm.rank:
                got = comm.sendrecv((comm.rank, round_no), dest=peer,
                                    sendtag=round_no,
                                    source=(comm.rank - round_no)
                                    % comm.size, recvtag=round_no)
                assert got[1] == round_no
            comm.barrier()
        return acc

    assert run(6, main) == [60] * 6


def test_gather_scatter_roundtrip_many_ranks():
    def main(comm):
        rows = comm.gather(np.full(8, comm.rank + 0.5), root=2)
        if comm.rank == 2:
            back = [r * 2 for r in rows]
        else:
            back = None
        mine = comm.scatter(back, root=2)
        return float(mine[0])

    res = run(8, main)
    assert res == [2 * (r + 0.5) for r in range(8)]


def test_return_clocks_all_ranks():
    def main(comm):
        comm.advance(1.0 + comm.rank)
        comm.barrier()
        return comm.rank

    res = mpirun(3, main, machine=ZERO_COST, return_clocks=True)
    values = [v for v, _ in res]
    clocks = [c for _, c in res]
    assert values == [0, 1, 2]
    assert all(c >= 3.0 for c in clocks)  # barrier syncs to slowest
