"""Runtime race sanitizer: clocks, shadow state, end-to-end detection."""

import importlib.util
import pathlib

import pytest

from repro.cca.scmd import run_scmd
from repro.errors import DataRaceError
from repro.mpi import mpirun, sanitizer
from repro.mpi.launcher import RankFailure
from repro.util import logging as rlog

FIXTURE = (pathlib.Path(__file__).resolve().parents[1]
           / "analysis" / "fixtures" / "seeded_race.py")


@pytest.fixture
def armed():
    # restore, don't blindly disarm: the CI race-sanitize job runs the
    # whole suite under REPRO_TSAN=1
    was = sanitizer.on
    sanitizer.configure()
    yield
    if not was:
        sanitizer.deactivate()


@pytest.fixture
def world2(armed):
    sanitizer.world_begin(2)
    yield
    sanitizer.world_end()


def test_off_by_default_outside_env():
    # whatever the env chose, hooks are no-ops without a world
    assert sanitizer.active() is False or sanitizer._state is not None
    sanitizer.record_write("orphan")  # no world: must not raise


def test_disabled_hooks_are_noops():
    was = sanitizer.on
    sanitizer.deactivate()
    try:
        assert sanitizer.on_send(0) is None
        sanitizer.on_recv(0, [1, 2], source=1)
        sanitizer.record_write("k", rank=0)
        assert sanitizer.active() is False
        assert sanitizer.last_sync_of(0) == "<no world>"
    finally:
        if was:
            sanitizer.configure()


# ------------------------------------------------------------ clock algebra
def test_unordered_cross_rank_writes_raise(world2):
    sanitizer.record_write("obj", rank=0)
    with pytest.raises(DataRaceError) as excinfo:
        sanitizer.record_write("obj", rank=1)
    msg = str(excinfo.value)
    assert "data race on obj" in msg
    assert "rank 1" in msg and "rank 0" in msg
    assert "<program start>" in msg  # last-sync labels in the report


def test_same_rank_rewrites_are_program_ordered(world2):
    sanitizer.record_write("obj", rank=0)
    sanitizer.record_write("obj", rank=0)  # no raise


def test_distinct_objects_never_conflict(world2):
    sanitizer.record_write("a", rank=0)
    sanitizer.record_write("b", rank=1)  # no raise


def test_message_edge_orders_writes(world2):
    sanitizer.record_write("obj", rank=0)
    vc = sanitizer.on_send(0)
    sanitizer.on_recv(1, vc, source=0)
    sanitizer.record_write("obj", rank=1)  # happens-after: no raise
    assert sanitizer.last_sync_of(1) == "recv from rank 0"


def test_send_is_a_release_point(world2):
    # a write *after* the send sits in a fresh epoch the receiver has
    # not observed — still a race
    vc = sanitizer.on_send(0)
    sanitizer.on_recv(1, vc, source=0)
    sanitizer.record_write("obj", rank=0)
    with pytest.raises(DataRaceError):
        sanitizer.record_write("obj", rank=1)


def test_one_way_message_does_not_order_the_reverse(world2):
    sanitizer.record_write("obj", rank=1)
    vc = sanitizer.on_send(0)
    sanitizer.on_recv(1, vc, source=0)
    # rank 1 -> rank 0 has no edge; rank 0's write still races
    with pytest.raises(DataRaceError):
        sanitizer.record_write("obj", rank=0)


class _Slot:
    pass


def _full_collective(*ranks, label="barrier"):
    slot = _Slot()
    for r in ranks:
        sanitizer.coll_arrive(slot, r)
    for r in ranks:
        sanitizer.coll_depart(slot, r, label)
    return slot


def test_collective_is_a_full_sync(world2):
    sanitizer.record_write("obj", rank=0)
    _full_collective(0, 1)
    sanitizer.record_write("obj", rank=1)  # ordered: no raise
    assert sanitizer.last_sync_of(1) == "collective barrier"


def test_writes_between_same_collectives_still_race(world2):
    _full_collective(0, 1)
    sanitizer.record_write("obj", rank=0)
    with pytest.raises(DataRaceError) as excinfo:
        sanitizer.record_write("obj", rank=1)
    assert "collective barrier" in str(excinfo.value)


# --------------------------------------------------------- shadow containers
def test_shadow_dict_records_rank_writes(world2):
    d = sanitizer.ShadowDict({}, key="K")
    with rlog.rank_context(0):
        d["a"] = 1
    with rlog.rank_context(1):
        with pytest.raises(DataRaceError) as excinfo:
            d["a"] = 2
    assert "data race on K" in str(excinfo.value)
    assert d == {"a": 1}  # the racy store never landed


def test_shadow_writes_outside_rank_context_are_ignored(world2):
    d = sanitizer.ShadowDict({}, key="K")
    d["serial"] = 1  # untagged thread: not rank code
    assert d == {"serial": 1}


def test_shadow_list_and_set_mutators(world2):
    lst = sanitizer.ShadowList([1], key="L")
    s = sanitizer.ShadowSet(set(), key="S")
    with rlog.rank_context(0):
        lst.append(2)
        s.add("x")
    with rlog.rank_context(1):
        with pytest.raises(DataRaceError):
            lst.extend([3])
        with pytest.raises(DataRaceError):
            s.discard("x")
    assert lst == [1, 2]
    assert s == {"x"}


def test_instrument_class_swaps_and_is_idempotent(armed):
    class K:
        data = {"a": 1}
        items = [1, 2]
        tags = {"x"}
        version = 3
        name = "k"

    sanitizer.instrument_class(K)
    assert isinstance(K.data, sanitizer.ShadowDict)
    assert isinstance(K.items, sanitizer.ShadowList)
    assert isinstance(K.tags, sanitizer.ShadowSet)
    assert K.data == {"a": 1} and K.items == [1, 2] and K.tags == {"x"}
    assert K.version == 3 and K.name == "k"
    first = K.data
    sanitizer.instrument_class(K)
    assert K.data is first  # shadow types are not re-wrapped


# ----------------------------------------------------------- end-to-end SCMD
def _load_seeded_fixture():
    spec = importlib.util.spec_from_file_location("seeded_race_fixture",
                                                  FIXTURE)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_seeded_race_detected_in_4rank_scmd(armed):
    mod = _load_seeded_fixture()

    def build(framework):
        framework.instantiate("RacyTally", "t")
        return framework.go("t", "go")

    # pinned to the thread backend: the runtime sanitizer only sees
    # rank-threads (the mp backend degrades it to a warning)
    with pytest.raises(RankFailure) as excinfo:
        run_scmd(4, build, classes=[mod.RacyTally], backend="threads")
    msg = str(excinfo.value)
    assert "DataRaceError" in msg
    assert "RacyTally.tallies" in msg  # object identity in the report
    assert "no happens-before edge" in msg


def test_armed_clean_collective_run_passes(armed):
    def main(comm):
        comm.barrier()
        return comm.allreduce(comm.rank)

    assert mpirun(4, main, backend="threads") == [6, 6, 6, 6]


def test_armed_clean_scmd_component_passes(armed):
    from repro.cca.component import Component
    from repro.cca.ports import GoPort

    class _Go(GoPort):
        def __init__(self, owner):
            self.owner = owner

        def go(self):
            return self.owner.run()

    class PerRankTally(Component):
        def set_services(self, services):
            self.services = services
            self.tally = {}  # instance state: one per rank, no race
            services.add_provides_port(_Go(self), "go")

        def run(self):
            for step in range(8):
                self.tally[step] = self.tally.get(step, 0) + 1
            comm = self.services.get_comm()
            if comm is not None:
                comm.barrier()
            return len(self.tally)

    def build(framework):
        framework.instantiate("PerRankTally", "t")
        return framework.go("t", "go")

    assert run_scmd(4, build, classes=[PerRankTally],
                    backend="threads") == [8, 8, 8, 8]
