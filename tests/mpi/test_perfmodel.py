"""Direct unit tests for the machine-model cost functions."""

import pytest

from repro.mpi import BEOWULF, CPLANT, LOCALHOST, MachineModel, ZERO_COST


def test_send_overhead_less_than_full_flight():
    m = CPLANT
    n = 10_000
    assert 0 < m.send_overhead(n) <= m.p2p_time(n)


def test_bcast_and_reduce_scale_with_depth():
    m = CPLANT
    n = 4096
    assert m.bcast_time(8, n) == pytest.approx(3 * m.p2p_time(n))
    assert m.reduce_time(2, n) >= m.p2p_time(n)
    assert m.allreduce_time(4, n) == pytest.approx(
        m.reduce_time(4, n) + m.bcast_time(4, n))


def test_gather_linear_in_payload():
    m = CPLANT
    t1 = m.gather_time(8, 1000)
    t2 = m.gather_time(8, 2000)
    assert t2 > t1
    # doubling payload roughly doubles the bandwidth term
    bw_1 = t1 - m._tree_depth(8) * m.latency
    bw_2 = t2 - m._tree_depth(8) * m.latency
    assert bw_2 == pytest.approx(2 * bw_1)


def test_allgather_and_alltoall_positive():
    m = BEOWULF
    assert m.allgather_time(4, 100) > 0
    assert m.alltoall_time(4, 100) == pytest.approx(3 * m.p2p_time(100))
    assert m.alltoall_time(1, 100) == 0.0


def test_compute_time_scaling():
    m = MachineModel("slow", 0.0, 1.0, flop_scale=2.5)
    assert m.compute_time(4.0) == 10.0
    assert ZERO_COST.compute_time(1.0) == 1.0


def test_reduce_flop_cost_term():
    base = MachineModel("a", 1e-6, 1e9)
    withg = MachineModel("b", 1e-6, 1e9, reduce_flop_cost=1e-8)
    assert withg.reduce_time(4, 1000) > base.reduce_time(4, 1000)


def test_model_immutability():
    with pytest.raises(Exception):
        CPLANT.latency = 0.0  # frozen dataclass


def test_preset_names():
    assert CPLANT.name == "cplant"
    assert BEOWULF.name == "beowulf"
    assert LOCALHOST.name == "localhost"
    assert ZERO_COST.name == "zero-cost"
