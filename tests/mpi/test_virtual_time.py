"""Tests for the virtual-time model: clocks, machine-model costs, and the
scaling-shape properties the paper's §5.2 experiments rely on."""

import numpy as np
import pytest

from repro.errors import MPIError
from repro.mpi import CPLANT, MachineModel, Op, ZERO_COST, mpirun
from repro.mpi.perfmodel import BEOWULF, LOCALHOST


# ------------------------------------------------------------ machine model
def test_p2p_time_is_latency_plus_bytes_over_bw():
    m = MachineModel("m", latency=1e-5, bandwidth=1e8)
    assert m.p2p_time(0) == pytest.approx(1e-5)
    assert m.p2p_time(10**8) == pytest.approx(1.0 + 1e-5)


def test_collective_costs_grow_logarithmically():
    m = CPLANT
    t2 = m.barrier_time(2)
    t4 = m.barrier_time(4)
    t32 = m.barrier_time(32)
    assert 0 < t2 <= t4 <= t32
    assert t32 == pytest.approx(5 * t2)  # log2(32) = 5 tree levels


def test_single_rank_collectives_are_free():
    m = CPLANT
    assert m.barrier_time(1) == 0.0
    assert m.bcast_time(1, 100) == 0.0
    assert m.allreduce_time(1, 100) == 0.0


def test_zero_cost_model_charges_nothing():
    assert ZERO_COST.p2p_time(10**9) == 0.0
    assert ZERO_COST.barrier_time(64) == 0.0


def test_presets_are_ordered_fast_to_slow():
    # localhost beats Myrinet beats fast Ethernet for a 1 MB transfer
    n = 2**20
    assert LOCALHOST.p2p_time(n) < CPLANT.p2p_time(n) < BEOWULF.p2p_time(n)


# ------------------------------------------------------------ clock mechanics
def test_advance_and_clock():
    def main(comm):
        comm.advance(2.5)
        comm.advance(0.5)
        return comm.clock

    (value, clock), = mpirun(1, main, machine=ZERO_COST, return_clocks=True)
    assert value >= 3.0
    assert clock >= 3.0


def test_advance_negative_raises():
    def main(comm):
        comm.advance(-1.0)

    from repro.mpi.launcher import RankFailure

    with pytest.raises(RankFailure):
        mpirun(1, main, machine=ZERO_COST)


def test_recv_clock_includes_message_flight_time():
    """Receiver that posted early must wait for sender clock + flight."""
    machine = MachineModel("t", latency=1.0, bandwidth=1e12)

    def main(comm):
        if comm.rank == 0:
            comm.advance(10.0)  # sender is busy for 10 virtual seconds
            comm.send(b"x", dest=1)
            return comm.clock
        comm.recv(source=0)
        return comm.clock

    clocks = mpirun(2, main, machine=machine)
    # receiver completes no earlier than send time (10) + latency (1)
    assert clocks[1] >= 11.0


def test_barrier_synchronizes_clocks_to_slowest():
    def main(comm):
        comm.advance(float(comm.rank) * 5.0)
        comm.barrier()
        return comm.clock

    clocks = mpirun(4, main, machine=ZERO_COST)
    slowest = 15.0
    assert all(c >= slowest for c in clocks)
    assert max(clocks) - min(clocks) < 1.0  # all leave together


def test_compute_is_charged_automatically():
    """Real CPU work between MPI calls lands on the virtual clock."""

    def main(comm):
        comm.reset_clock()
        # burn measurable CPU
        x = np.random.default_rng(0).random(400_000)
        for _ in range(5):
            x = np.sqrt(x * x + 1.0)
        return comm.clock

    (clock,) = mpirun(1, main, machine=ZERO_COST)
    assert clock > 0.0


def test_flop_scale_rescales_compute():
    def main(comm):
        comm.reset_clock()
        x = np.random.default_rng(0).random(300_000)
        for _ in range(5):
            x = np.sqrt(x * x + 1.0)
        return comm.clock

    (fast,) = mpirun(1, main, machine=MachineModel("f", 0, float("inf"), flop_scale=1.0))
    (slow,) = mpirun(1, main, machine=MachineModel("s", 0, float("inf"), flop_scale=10.0))
    assert slow > 3.0 * fast  # 10x scale with measurement noise margin


# ------------------------------------------------------------ scaling shapes
def _ghost_exchange_step(comm, n_local, nvar=9):
    """One halo-exchange + reduction step on an n_local x n_local patch —
    the communication skeleton of the reaction-diffusion update."""
    ghost = np.zeros((n_local, nvar))
    left = (comm.rank - 1) % comm.size
    right = (comm.rank + 1) % comm.size
    if comm.size > 1:
        comm.sendrecv(ghost, dest=right, sendtag=0, source=left, recvtag=0)
        comm.sendrecv(ghost, dest=left, sendtag=1, source=right, recvtag=1)
    comm.allreduce(1.0, op=Op.MAX)


def test_weak_scaling_is_flat_in_rank_count():
    """Fixed per-rank workload: modeled time must be ~independent of P
    (the paper's Fig 8)."""

    def main(comm, n_local):
        comm.reset_clock()
        for _ in range(5):
            comm.advance(n_local * n_local * 1e-6)  # modeled compute
            _ghost_exchange_step(comm, n_local)
        return comm.clock

    # pinned to the thread backend: the shape bound is calibrated to its
    # exact message sizing (mp's pickle framing shifts comm costs a bit)
    t2 = max(mpirun(2, main, args=(50,), machine=CPLANT,
                    backend="threads"))
    t8 = max(mpirun(8, main, args=(50,), machine=CPLANT,
                    backend="threads"))
    assert t8 < 1.2 * t2


def test_weak_scaling_time_tracks_problem_size():
    """Bigger per-rank patches take proportionally longer (Table 5)."""

    def main(comm, n_local):
        comm.reset_clock()
        for _ in range(5):
            comm.advance(n_local * n_local * 1e-6)
            _ghost_exchange_step(comm, n_local)
        return comm.clock

    t50 = max(mpirun(4, main, args=(50,), machine=CPLANT))
    t100 = max(mpirun(4, main, args=(100,), machine=CPLANT))
    t175 = max(mpirun(4, main, args=(175,), machine=CPLANT))
    assert 2.5 < t100 / t50 < 5.0     # ~(100/50)^2 = 4 with comm offsets
    assert 2.0 < t175 / t100 < 4.0    # ~(175/100)^2 = 3.06


def test_strong_scaling_efficiency_degrades_for_small_problems():
    """Fixed global size: efficiency at high P drops when the per-rank
    patch shrinks toward the comm cost (the paper's Fig 9 knee)."""

    def main(comm, n_global):
        comm.reset_clock()
        n_local = max(1, n_global // comm.size)
        for _ in range(5):
            comm.advance(n_local * n_global * 1e-6)
            _ghost_exchange_step(comm, n_global)
        return comm.clock

    def efficiency(n_global, p):
        # thread backend: the 0.9-efficiency knee is calibrated to its
        # exact message sizing, see test_weak_scaling_is_flat_...
        t1 = max(mpirun(1, main, args=(n_global,), machine=CPLANT,
                        backend="threads"))
        tp = max(mpirun(p, main, args=(n_global,), machine=CPLANT,
                        backend="threads"))
        return t1 / (p * tp)

    e_small = efficiency(64, 16)
    e_large = efficiency(512, 16)
    assert e_large > e_small
    assert e_large > 0.9
