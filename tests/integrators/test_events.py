"""Tests for CVode event detection (the rootfinding facility, used to
measure ignition delay)."""

import numpy as np
import pytest

from repro.integrators import CVode


def test_event_located_on_known_crossing():
    """y = exp(-t) crosses 0.5 at t = ln 2."""
    cv = CVode(lambda t, y: -y, 0.0, np.array([1.0]), rtol=1e-9,
               atol=1e-12)
    t, y, found = cv.integrate_to_event(
        5.0, lambda t, y: y[0] - 0.5)
    assert found
    assert t == pytest.approx(np.log(2.0), abs=1e-5)
    assert y[0] == pytest.approx(0.5, abs=1e-5)


def test_event_not_found_returns_endpoint():
    cv = CVode(lambda t, y: -y, 0.0, np.array([1.0]))
    t, y, found = cv.integrate_to_event(1.0, lambda t, y: y[0] - 2.0)
    assert not found
    assert t >= 1.0


def test_time_based_event():
    cv = CVode(lambda t, y: np.array([1.0]), 0.0, np.array([0.0]),
               rtol=1e-10, atol=1e-13)
    t, y, found = cv.integrate_to_event(10.0, lambda t, y: t - 3.3)
    assert found
    assert t == pytest.approx(3.3, abs=1e-6)


def test_ignition_delay_measurement():
    """The paper's 0D case instrumented with event detection: time at
    which T crosses 1500 K (a standard ignition-delay marker)."""
    from repro.chemistry import ConstantVolumeReactor, h2_air_mechanism
    from repro.chemistry.h2_air import stoichiometric_h2_air

    mech = h2_air_mechanism()
    reactor = ConstantVolumeReactor(mech, 1000.0, 101325.0,
                                    stoichiometric_h2_air())
    cv = CVode(reactor.rhs, 0.0, reactor.initial_state(), rtol=1e-8,
               atol=1e-12, method="bdf")
    t_ign, y, found = cv.integrate_to_event(
        1e-3, lambda t, y: y[0] - 1500.0)
    assert found
    # delay consistent with the quickstart history (~0.25-0.30 ms)
    assert 1e-4 < t_ign < 5e-4
    assert y[0] == pytest.approx(1500.0, rel=1e-3)
