"""Tests for SSP-RK2, the spectral-radius estimator and step controllers."""

import numpy as np
import pytest

from repro.errors import IntegratorError
from repro.integrators import (
    IController,
    PIController,
    estimate_spectral_radius,
    gershgorin_diffusion,
    rk2_step,
    ssp_rk2,
)


# ------------------------------------------------------------------ RK2
def test_rk2_second_order_convergence():
    def err(dt):
        y = ssp_rk2(lambda t, y: -y, 0.0, np.array([1.0]), 1.0, dt)
        return abs(y[0] - np.exp(-1.0))

    assert 3.0 < err(0.02) / err(0.01) < 5.0


def test_rk2_exact_for_linear_in_t():
    # y' = 2t: RK2 integrates quadratics exactly
    y = ssp_rk2(lambda t, y: np.array([2.0 * t]), 0.0, np.array([0.0]),
                2.0, 0.25)
    assert y[0] == pytest.approx(4.0, rel=1e-12)


def test_rk2_step_convex_combination_preserves_bounds():
    """SSP property on a monotone problem: no overshoot below zero."""
    y = np.array([1.0])
    for _ in range(100):
        y = rk2_step(lambda t, u: -u, 0.0, y, 0.5)
        assert y[0] >= 0.0


def test_rk2_final_step_clipping():
    y = ssp_rk2(lambda t, y: np.array([1.0]), 0.0, np.array([0.0]),
                1.0, 0.3)
    assert y[0] == pytest.approx(1.0, rel=1e-12)


# ------------------------------------------------------------- spectral
def test_spectral_radius_linear_system():
    A = np.diag([-1.0, -10.0, -100.0])

    rho = estimate_spectral_radius(lambda t, y: A @ y, 0.0,
                                   np.array([1.0, 1.0, 1.0]))
    assert 90.0 <= rho <= 140.0  # ~100 with safety factor


def test_spectral_radius_zero_field():
    rho = estimate_spectral_radius(lambda t, y: np.zeros_like(y), 0.0,
                                   np.ones(4))
    assert rho == 0.0


def test_gershgorin_diffusion_bound():
    rho = gershgorin_diffusion(2.0, (0.1, 0.1))
    assert rho == pytest.approx(4 * 2.0 * (100 + 100))
    with pytest.raises(IntegratorError):
        gershgorin_diffusion(-1.0, (0.1,))


def test_gershgorin_bounds_discrete_laplacian():
    """The bound must dominate the true spectral radius of the 1-D
    Laplacian: rho_true = (4D/dx^2) sin^2(...) < 4D/dx^2."""
    n, dx, D = 32, 0.05, 0.3

    def lap(t, u):
        out = np.zeros_like(u)
        out[1:-1] = D * (u[2:] - 2 * u[1:-1] + u[:-2]) / dx**2
        out[0] = D * (u[1] - 2 * u[0]) / dx**2
        out[-1] = D * (u[-2] - 2 * u[-1]) / dx**2
        return out

    rho_est = estimate_spectral_radius(lap, 0.0, np.zeros(n), seed=3)
    bound = gershgorin_diffusion(D, (dx,))
    assert rho_est <= 1.3 * bound
    assert rho_est >= 0.5 * bound  # estimator not wildly low either


# ------------------------------------------------------------ controllers
def test_icontroller_shrinks_on_large_error():
    c = IController(order=2)
    assert c.factor(10.0) < 1.0
    assert c.factor(0.01) > 1.0
    assert c.accept(0.5) and not c.accept(1.5)


def test_icontroller_clamps():
    c = IController(order=1, min_factor=0.5, max_factor=2.0)
    assert c.factor(1e6) == 0.5
    assert c.factor(1e-12) == 2.0
    assert c.factor(0.0) == 2.0


def test_controller_validation():
    with pytest.raises(IntegratorError):
        IController(order=0)


def test_pi_controller_smoother_than_i():
    """After an error spike the PI controller reacts less aggressively on
    the following step."""
    i_c = IController(order=2)
    pi_c = PIController(order=2)
    pi_c.factor(0.9)  # seed history
    f_i = i_c.factor(0.9)
    f_pi = pi_c.factor(0.9)
    assert abs(f_pi - 1.0) <= abs(f_i - 1.0) + 0.05


def test_pi_controller_first_step_matches_i():
    i_c = IController(order=3)
    pi_c = PIController(order=3)
    assert pi_c.factor(0.5) == pytest.approx(i_c.factor(0.5))
