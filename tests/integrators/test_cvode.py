"""Tests for the CVODE-style integrator: accuracy on known solutions,
stiff robustness (Robertson), order/step adaptation, Adams mode, and the
0D ignition use-case it exists for."""

import numpy as np
import pytest

from repro.errors import IntegratorError
from repro.integrators import CVode


# ----------------------------------------------------------- construction
def test_validation():
    f = lambda t, y: -y
    with pytest.raises(IntegratorError):
        CVode(f, 0.0, np.ones(1), method="rk4")
    with pytest.raises(IntegratorError):
        CVode(f, 0.0, np.ones(1), rtol=2.0)
    with pytest.raises(IntegratorError):
        CVode(f, 0.0, np.ones(1), atol=0.0)
    with pytest.raises(IntegratorError):
        CVode(f, 0.0, np.ones(1), max_order=9)


def test_backwards_integration_rejected():
    cv = CVode(lambda t, y: -y, 1.0, np.ones(1))
    with pytest.raises(IntegratorError):
        cv.integrate_to(0.5)


# ----------------------------------------------------------- accuracy
@pytest.mark.parametrize("method", ["bdf", "adams"])
def test_exponential_decay(method):
    cv = CVode(lambda t, y: -y, 0.0, np.array([1.0]),
               rtol=1e-8, atol=1e-12, method=method)
    y = cv.integrate_to(2.0)
    assert y[0] == pytest.approx(np.exp(-2.0), rel=1e-6)
    assert cv.stats.nsteps > 0
    assert cv.stats.nfe > cv.stats.nsteps


@pytest.mark.parametrize("method", ["bdf", "adams"])
def test_harmonic_oscillator(method):
    def f(t, y):
        return np.array([y[1], -y[0]])

    cv = CVode(f, 0.0, np.array([1.0, 0.0]), rtol=1e-8, atol=1e-10,
               method=method)
    y = cv.integrate_to(np.pi)
    assert y[0] == pytest.approx(-1.0, abs=1e-5)
    assert y[1] == pytest.approx(0.0, abs=1e-5)


def test_tolerance_controls_accuracy():
    errs = []
    for rtol in (1e-4, 1e-8):
        cv = CVode(lambda t, y: -y, 0.0, np.array([1.0]),
                   rtol=rtol, atol=rtol * 1e-3)
        y = cv.integrate_to(1.0)
        errs.append(abs(y[0] - np.exp(-1.0)))
    assert errs[1] < errs[0]


def test_nonautonomous_rhs():
    # y' = 2t -> y = t^2
    cv = CVode(lambda t, y: np.array([2.0 * t]), 0.0, np.array([0.0]),
               rtol=1e-10, atol=1e-12)
    assert cv.integrate_to(3.0)[0] == pytest.approx(9.0, rel=1e-7)


# ----------------------------------------------------------- stiffness
def test_stiff_linear_system():
    """y' = -1000(y - cos t) - sin t; solution y = cos t.  Explicit codes
    need h ~ 1e-3; BDF must take far fewer steps."""

    def f(t, y):
        return np.array([-1000.0 * (y[0] - np.cos(t)) - np.sin(t)])

    cv = CVode(f, 0.0, np.array([1.0]), rtol=1e-7, atol=1e-10, method="bdf")
    y = cv.integrate_to(2.0)
    assert y[0] == pytest.approx(np.cos(2.0), abs=1e-5)
    assert cv.stats.nsteps < 500


def test_robertson_problem():
    """The classic stiff benchmark: rate constants span 9 orders of
    magnitude; mass must be conserved and the known t=40 state matched."""

    def f(t, y):
        return np.array([
            -0.04 * y[0] + 1e4 * y[1] * y[2],
            0.04 * y[0] - 1e4 * y[1] * y[2] - 3e7 * y[1] ** 2,
            3e7 * y[1] ** 2,
        ])

    cv = CVode(f, 0.0, np.array([1.0, 0.0, 0.0]), rtol=1e-7,
               atol=np.array([1e-10, 1e-12, 1e-10]), method="bdf")
    y = cv.integrate_to(40.0)
    assert y.sum() == pytest.approx(1.0, abs=1e-7)
    # reference (LSODE): y(40) ~ [0.7158, 9.186e-6, 0.2842]
    assert y[0] == pytest.approx(0.7158, rel=2e-3)
    assert y[1] == pytest.approx(9.19e-6, rel=0.05)
    assert y[2] == pytest.approx(0.2842, rel=2e-3)


def test_van_der_pol_stiff():
    mu = 100.0

    def f(t, y):
        return np.array([y[1], mu * (1 - y[0] ** 2) * y[1] - y[0]])

    cv = CVode(f, 0.0, np.array([2.0, 0.0]), rtol=1e-6, atol=1e-9,
               method="bdf")
    y = cv.integrate_to(1.0)
    assert np.isfinite(y).all()
    assert 1.5 < y[0] <= 2.01  # slow decay along the relaxation branch


# ----------------------------------------------------------- mechanics
def test_order_ramps_up():
    cv = CVode(lambda t, y: -y, 0.0, np.array([1.0]), rtol=1e-10,
               atol=1e-13)
    cv.integrate_to(5.0)
    assert cv.order > 1


def test_step_grows_on_smooth_problem():
    cv = CVode(lambda t, y: -0.1 * y, 0.0, np.array([1.0]),
               rtol=1e-6, atol=1e-9)
    h_first = cv.h
    cv.integrate_to(10.0)
    assert cv.h > h_first


def test_max_step_respected():
    cv = CVode(lambda t, y: -y, 0.0, np.array([1.0]), max_step=0.01)
    cv.integrate_to(0.5)
    assert cv.h <= 0.01 + 1e-15


def test_interpolation_within_history():
    cv = CVode(lambda t, y: y, 0.0, np.array([1.0]), rtol=1e-9, atol=1e-12)
    cv.integrate_to(1.0)
    mid = (cv._ts[1] + cv._ts[0]) / 2
    assert cv.interpolate(mid)[0] == pytest.approx(np.exp(mid), rel=1e-6)
    with pytest.raises(IntegratorError):
        cv.interpolate(cv.t + 100.0)


def test_stats_accumulate():
    cv = CVode(lambda t, y: -y, 0.0, np.array([1.0]), method="bdf")
    cv.integrate_to(1.0)
    s = cv.stats
    assert s.nsteps > 0 and s.nfe > 0 and s.nni > 0
    assert s.nje >= 1  # at least one Jacobian for BDF


def test_adams_detects_stiffness_eventually():
    """Adams + functional iteration on a very stiff problem either crawls
    or fails — it must raise rather than silently produce garbage."""

    def f(t, y):
        return np.array([-1e7 * y[0]])

    cv = CVode(f, 0.0, np.array([1.0]), method="adams", rtol=1e-6,
               atol=1e-12)
    try:
        y = cv.integrate_to(1e-3)
        # if it survives, the answer must still be right
        assert y[0] == pytest.approx(0.0, abs=1e-4)
    except IntegratorError:
        pass  # acceptable: flagged as failing to converge


# ----------------------------------------------------------- ignition
def test_0d_ignition_constant_volume():
    """The paper's §4.1 case: stoichiometric H2-air at 1000 K, 1 atm in a
    rigid vessel, integrated to 1 ms — it must ignite (T > 2000 K) with
    rising pressure and conserved mass."""
    from repro.chemistry import ConstantVolumeReactor, h2_air_mechanism
    from repro.chemistry.h2_air import stoichiometric_h2_air

    mech = h2_air_mechanism()
    reactor = ConstantVolumeReactor(mech, 1000.0, 101325.0,
                                    stoichiometric_h2_air())
    cv = CVode(reactor.rhs, 0.0, reactor.initial_state(),
               rtol=1e-8, atol=1e-12, method="bdf")
    y = cv.integrate_to(1e-3)
    T, Y, P = reactor.unpack(y)
    assert T > 2000.0          # ignited
    assert P > 2 * 101325.0    # pressure rise in the closed vessel
    assert Y.sum() == pytest.approx(1.0, abs=1e-6)
    assert Y.min() > -1e-8
    # H2 mostly consumed, H2O formed
    assert Y[mech.species_index("H2")] < 0.01
    assert Y[mech.species_index("H2O")] > 0.2
