"""Property-based tests for the RKC scheme."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.integrators import rkc_step
from repro.integrators.rkc import beta, stages_for


@settings(max_examples=30, deadline=None)
@given(st.floats(1e-4, 10.0), st.floats(0.1, 1e5))
def test_stage_count_covers_stability_interval(dt, rho):
    s = stages_for(dt, rho)
    assert s >= 2
    assert beta(s) >= dt * rho  # stability region covers the spectrum


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 30))
def test_stage_count_inverse(s_target):
    """Constructing dt so that s stages are just enough yields s (or one
    more from the safety factor)."""
    rho = 100.0
    dt = 0.653 * s_target**2 / rho / 1.05
    s = stages_for(dt, rho)
    assert s_target - 1 <= s <= s_target + 1


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 16))
def test_rkc_exact_for_constant_rhs(s):
    """y' = c integrates exactly for any stage count (consistency)."""
    c = np.array([2.5, -1.0])
    y = rkc_step(lambda t, yy: c, 0.0, np.zeros(2), 0.3, rho=1.0,
                 stages=s)
    np.testing.assert_allclose(y, 0.3 * c, rtol=1e-12)


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 16))
def test_rkc_second_order_on_linear_time_rhs(s):
    """y' = t has solution t^2/2; a second-order scheme is exact."""
    y = rkc_step(lambda t, yy: np.array([t]), 0.0, np.zeros(1), 1.0,
                 rho=1.0, stages=s)
    assert y[0] == pytest.approx(0.5, rel=1e-10)


@settings(max_examples=20, deadline=None)
@given(st.integers(3, 24), st.floats(0.5, 0.95))
def test_rkc_damps_inside_stability_region(s, frac):
    """For lambda*dt inside the exact beta(s), |amplification| <= 1
    (damped scheme).  Note 0.653 s^2 overestimates beta(s) for small s,
    so the asymptote would place some of these points *outside* the
    region."""
    lam = frac * beta(s)  # dt = 1
    y = rkc_step(lambda t, yy: -lam * yy, 0.0, np.ones(1), 1.0,
                 rho=lam, stages=s)
    assert abs(y[0]) <= 1.0 + 1e-9


def test_rkc_unstable_beyond_region_detectable():
    """Far outside the stability interval with too few stages the step
    amplifies — confirming the stage-count logic is load-bearing."""
    lam = 500.0
    y = np.ones(1)
    for _ in range(10):
        y = rkc_step(lambda t, yy: -lam * yy, 0.0, y, 1.0, rho=lam,
                     stages=3)  # needs ~28 stages
    assert abs(y[0]) > 1.0
