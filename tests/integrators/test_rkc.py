"""Tests for the Runge-Kutta-Chebyshev integrator: order, extended
stability (the whole point of RKC), stage-count selection."""

import numpy as np
import pytest

from repro.errors import IntegratorError
from repro.integrators import RKC, rkc_step
from repro.integrators.rkc import stages_for


def test_stages_grow_with_stiffness():
    assert stages_for(1.0, 10.0) < stages_for(1.0, 1000.0)
    # beta(s) ~ 0.653 s^2 must cover dt*rho
    for rho in (10.0, 100.0, 5000.0):
        s = stages_for(1.0, rho)
        assert 0.653 * s * s >= rho


def test_stages_validation():
    with pytest.raises(IntegratorError):
        stages_for(-1.0, 10.0)
    with pytest.raises(IntegratorError):
        stages_for(1.0, -10.0)
    with pytest.raises(IntegratorError):
        rkc_step(lambda t, y: -y, 0.0, np.ones(1), 0.1, 1.0, stages=1)


def test_second_order_convergence():
    """Error on y' = -y must shrink ~4x when dt halves (order 2)."""

    def solve(dt):
        y = np.array([1.0])
        t = 0.0
        while t < 1.0 - 1e-12:
            y = rkc_step(lambda tt, yy: -yy, t, y, dt, rho=1.0, stages=4)
            t += dt
        return abs(y[0] - np.exp(-1.0))

    e1 = solve(0.1)
    e2 = solve(0.05)
    assert 3.0 < e1 / e2 < 5.5


def test_stability_far_beyond_forward_euler():
    """dt * rho = 200: forward Euler explodes (needs dt*rho <= 2); RKC with
    its stage count stays bounded and accurate."""
    lam = 2000.0
    dt = 0.1  # dt*lam = 200

    y = np.array([1.0])
    s = stages_for(dt, lam)
    y = rkc_step(lambda t, yy: -lam * yy, 0.0, y, dt, rho=lam, stages=s)
    assert abs(y[0]) < 1.0  # decays, no blow-up


def test_heat_equation_decay_rate():
    """1-D diffusion with Dirichlet-0 ends: the lowest mode decays as
    exp(-D (pi/L)^2 t)."""
    n = 64
    L = 1.0
    dx = L / (n + 1)
    D = 1.0
    x = np.linspace(dx, L - dx, n)
    y0 = np.sin(np.pi * x)

    def lap(t, u):
        out = np.empty_like(u)
        out[1:-1] = (u[2:] - 2 * u[1:-1] + u[:-2])
        out[0] = u[1] - 2 * u[0]
        out[-1] = u[-2] - 2 * u[-1]
        return D * out / dx**2

    rho = 4.0 * D / dx**2
    t_end = 0.05
    solver = RKC(lap, lambda t, y: rho)
    y = solver.integrate_to(0.0, y0.copy(), t_end, dt=t_end / 10)
    expected = np.exp(-D * np.pi**2 * t_end) * y0
    np.testing.assert_allclose(y, expected, atol=2e-3)
    assert solver.nsteps == 10
    assert solver.last_stages >= 2
    assert solver.nfe > solver.nsteps  # multiple stages per step


def test_driver_counts_rhs_calls():
    calls = []

    def f(t, y):
        calls.append(t)
        return -y

    solver = RKC(f, lambda t, y: 1.0)
    solver.advance(0.0, np.ones(2), 0.1)
    # an s-stage RKC step costs exactly s RHS evaluations
    assert solver.nfe == len(calls) == solver.last_stages


def test_driver_backwards_raises():
    solver = RKC(lambda t, y: -y, lambda t, y: 1.0)
    with pytest.raises(IntegratorError):
        solver.integrate_to(1.0, np.ones(1), 0.0, 0.1)


def test_nonlinear_reaction_diffusion_blob():
    """2-D diffusion of a hot spot: total mass conserved with Neumann-like
    stencil, peak decreases, field stays positive."""
    n = 24
    dx = 1.0 / n
    u0 = np.zeros((n, n))
    u0[n // 2 - 2:n // 2 + 2, n // 2 - 2:n // 2 + 2] = 1.0

    def lap(t, u):
        out = np.zeros_like(u)
        out[1:-1, 1:-1] = (
            u[2:, 1:-1] + u[:-2, 1:-1] + u[1:-1, 2:] + u[1:-1, :-2]
            - 4 * u[1:-1, 1:-1]
        )
        # zero-flux edges: reflect
        out[0, :] += 0.0
        return 0.01 * out / dx**2

    rho = 16 * 0.01 / dx**2
    solver = RKC(lambda t, u: lap(t, u), lambda t, u: rho)
    u = solver.integrate_to(0.0, u0.copy(), 0.1, dt=0.02)
    assert u.max() < u0.max()
    assert u.min() > -1e-10
