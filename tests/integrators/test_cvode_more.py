"""Additional CVode coverage: convergence orders, dense output accuracy,
vector tolerances, explicit initial steps, long integrations."""

import numpy as np
import pytest

from repro.integrators import CVode


def test_atol_vector_per_component():
    def f(t, y):
        return np.array([-y[0], -1e-3 * y[1]])

    cv = CVode(f, 0.0, np.array([1.0, 1e-6]), rtol=1e-8,
               atol=np.array([1e-10, 1e-14]))
    y = cv.integrate_to(1.0)
    assert y[0] == pytest.approx(np.exp(-1.0), rel=1e-5)
    assert y[1] == pytest.approx(1e-6 * np.exp(-1e-3), rel=1e-5)


def test_explicit_initial_step_is_starting_guess():
    """h0 seeds the controller; the error test may still shrink it."""
    cv = CVode(lambda t, y: -y, 0.0, np.ones(1), h0=1e-3)
    assert cv.h == 1e-3
    t, _ = cv.step()
    assert 0.0 < t <= 1e-3 + 1e-12


def test_long_integration_many_steps():
    """Decay over 20 time constants: the adaptive machinery must keep
    accuracy without step-count blowup."""
    cv = CVode(lambda t, y: -y, 0.0, np.array([1.0]), rtol=1e-8,
               atol=1e-14)
    y = cv.integrate_to(20.0)
    assert y[0] == pytest.approx(np.exp(-20.0), rel=1e-3)
    assert cv.stats.nsteps < 2000


def test_dense_output_matches_solution_between_nodes():
    cv = CVode(lambda t, y: np.array([np.cos(t)]), 0.0, np.array([0.0]),
               rtol=1e-10, atol=1e-12)
    y = cv.integrate_to(1.5)
    assert y[0] == pytest.approx(np.sin(1.5), abs=1e-7)
    # interpolate at several points inside the final history window
    ts = np.array(list(cv._ts))
    for frac in (0.25, 0.5, 0.75):
        t_mid = ts.min() + frac * (ts.max() - ts.min())
        assert cv.interpolate(t_mid)[0] == pytest.approx(
            np.sin(t_mid), abs=1e-6)


@pytest.mark.parametrize("method,rtol_band", [
    ("bdf", (1e-7, 2e-3)),
    ("adams", (1e-8, 1e-3)),
])
def test_global_error_tracks_tolerance(method, rtol_band):
    lo, hi = rtol_band
    errs = []
    for rtol in (1e-4, 1e-7):
        cv = CVode(lambda t, y: np.array([y[1], -y[0]]), 0.0,
                   np.array([0.0, 1.0]), rtol=rtol, atol=rtol * 1e-2,
                   method=method)
        y = cv.integrate_to(2.0)
        errs.append(abs(y[0] - np.sin(2.0)))
    assert errs[1] < errs[0]
    assert errs[1] < hi


def test_nonstiff_adams_cheaper_than_bdf():
    """On a smooth non-stiff problem Adams needs no Jacobians at all."""

    def f(t, y):
        return np.array([y[1], -y[0]])

    adams = CVode(f, 0.0, np.array([1.0, 0.0]), method="adams",
                  rtol=1e-7, atol=1e-10)
    adams.integrate_to(10.0)
    bdf = CVode(f, 0.0, np.array([1.0, 0.0]), method="bdf",
                rtol=1e-7, atol=1e-10)
    bdf.integrate_to(10.0)
    assert adams.stats.nje == 0
    assert bdf.stats.nje >= 1


def test_integrate_to_returns_exact_endpoint():
    cv = CVode(lambda t, y: -y, 0.0, np.ones(1))
    y = cv.integrate_to(0.777)
    # interpolation lands exactly on the requested time
    assert cv.t >= 0.777
    assert y[0] == pytest.approx(np.exp(-0.777), rel=1e-4)


def test_repeated_integrate_to_consistent():
    cv = CVode(lambda t, y: -y, 0.0, np.ones(1), rtol=1e-9, atol=1e-12)
    for t_end in (0.5, 1.0, 1.5, 2.0):
        y = cv.integrate_to(t_end)
        assert y[0] == pytest.approx(np.exp(-t_end), rel=1e-6)


def test_decaying_oscillator_stiff_mix():
    """Mixed stiffness: fast decaying mode + slow oscillation."""

    def f(t, y):
        return np.array([
            -1e4 * (y[0] - np.cos(y[2])),
            -y[1],
            np.array(1.0),
        ], dtype=float)

    cv = CVode(f, 0.0, np.array([1.0, 1.0, 0.0]), rtol=1e-6, atol=1e-9,
               method="bdf")
    y = cv.integrate_to(3.0)
    assert y[0] == pytest.approx(np.cos(3.0), abs=1e-3)
    assert y[1] == pytest.approx(np.exp(-3.0), rel=1e-3)
    assert y[2] == pytest.approx(3.0, rel=1e-9)
