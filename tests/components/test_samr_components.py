"""Tests for the SAMR-facing components: GrACEComponent, the integrators,
MaxDiffCoeffEvaluator, ErrorEstAndRegrid."""

import numpy as np
import pytest

from repro.cca import BuilderService, Framework
from repro.components import (
    CvodeComponent,
    DRFMComponent,
    DiffusionPhysics,
    ErrorEstAndRegrid,
    ExplicitIntegrator,
    GrACEComponent,
    ImplicitIntegrator,
    MaxDiffCoeffEvaluator,
    ThermoChemistry,
)
from repro.errors import CCAError


def diffusion_stack(nx=16, max_levels=1, mechanism="h2-lite"):
    """GrACE + chemistry + transport + diffusion + RKC, fully wired."""
    f = Framework()
    b = BuilderService(f)
    (b.create(GrACEComponent, "mesh")
      .create(ThermoChemistry, "tc")
      .create(DRFMComponent, "drfm")
      .create(DiffusionPhysics, "diff")
      .create(MaxDiffCoeffEvaluator, "mdc")
      .create(ExplicitIntegrator, "rkc")
      .create(ErrorEstAndRegrid, "regrid")
      .parameter("mesh", "nx", nx)
      .parameter("mesh", "ny", nx)
      .parameter("mesh", "x_extent", 0.01)
      .parameter("mesh", "y_extent", 0.01)
      .parameter("mesh", "max_levels", max_levels)
      .parameter("tc", "mechanism", mechanism)
      .parameter("regrid", "dataobject", "flow")
      .parameter("regrid", "variables", "0")
      .connect("drfm", "chem", "tc", "chemistry")
      .connect("diff", "transport", "drfm", "transport")
      .connect("diff", "chem", "tc", "chemistry")
      .connect("diff", "mesh", "mesh", "mesh")
      .connect("mdc", "mesh", "mesh", "mesh")
      .connect("mdc", "data", "mesh", "data")
      .connect("mdc", "transport", "drfm", "transport")
      .connect("mdc", "chem", "tc", "chemistry")
      .connect("rkc", "rhs", "diff", "rhs")
      .connect("rkc", "bound", "mdc", "bound")
      .connect("rkc", "mesh", "mesh", "mesh")
      .connect("rkc", "data", "mesh", "data")
      .connect("regrid", "mesh", "mesh", "mesh")
      .connect("regrid", "data", "mesh", "data"))
    return f


def declare_flame(f, hot=(0.005, 0.005), T_hot=900.0):
    mesh = f.services_of("mesh").provides["mesh"][0]
    data = f.services_of("mesh").provides["data"][0]
    chem = f.services_of("tc").provides["chemistry"][0]
    mesh.build_base_level()
    mech = chem.mechanism()
    dobj = data.declare("flow", mech.n_species + 1)
    h = mesh.hierarchy()
    iN2 = mech.species_index("N2")
    for patch in dobj.owned_patches():
        lvl = h.level(patch.level)
        x, y = lvl.cell_centers(patch, h.origin, ghost=True)
        X, Y = np.meshgrid(x, y, indexing="ij")
        r2 = (X - hot[0]) ** 2 + (Y - hot[1]) ** 2
        arr = dobj.array(patch)
        arr[0] = 300.0 + (T_hot - 300.0) * np.exp(-r2 / 0.001**2)
        arr[1:] = 0.0
        arr[1 + iN2] = 1.0
    for lev in range(h.nlevels):
        data.exchange_ghosts("flow", lev)
    return mesh, data, dobj


# ------------------------------------------------------------------ GrACE
def test_grace_builds_hierarchy_with_parameters():
    f = diffusion_stack(nx=24)
    mesh, data, dobj = declare_flame(f)
    h = mesh.hierarchy()
    assert h.levels[0].ncells == 24 * 24
    assert h.dx(0)[0] == pytest.approx(0.01 / 24)
    assert mesh.rank() == 0 and mesh.nranks() == 1
    assert len(mesh.owned_patches(0)) == 1
    assert data.names() == ["flow"]


def test_grace_requires_build_before_use():
    f = diffusion_stack()
    mesh = f.services_of("mesh").provides["mesh"][0]
    with pytest.raises(CCAError, match="not built"):
        mesh.hierarchy()


def test_grace_rejects_double_build_and_duplicate_declare():
    f = diffusion_stack()
    mesh, data, _ = declare_flame(f)
    with pytest.raises(CCAError, match="already built"):
        mesh.build_base_level()
    with pytest.raises(CCAError, match="already declared"):
        data.declare("flow", 2)
    with pytest.raises(CCAError, match="no DataObject"):
        data.data("nope")


def test_grace_direct_regrid_hint():
    f = diffusion_stack()
    mesh, _, _ = declare_flame(f)
    with pytest.raises(CCAError, match="ErrorEstAndRegrid"):
        mesh.regrid()


# ------------------------------------------------------------ MaxDiffCoeff
def test_max_diff_coeff_bound_scales_with_resolution():
    f1 = diffusion_stack(nx=16)
    declare_flame(f1)
    b1 = f1.services_of("mdc").provides["bound"][0].spectral_bound(0.0)
    f2 = diffusion_stack(nx=32)
    declare_flame(f2)
    b2 = f2.services_of("mdc").provides["bound"][0].spectral_bound(0.0)
    # ~4x from the 1/dx^2 scaling (cell-center sampling of the hot spot
    # shifts D_max slightly between resolutions)
    assert 3.0 < b2 / b1 < 5.5
    assert b1 > 0


# ------------------------------------------------------- ExplicitIntegrator
def test_rkc_integrator_diffuses_hotspot():
    f = diffusion_stack(nx=16)
    mesh, data, dobj = declare_flame(f, T_hot=900.0)
    integ = f.services_of("rkc").provides["integrator"][0]
    T_before = dobj.max_norm(k=0)
    total_before = dobj.sum(k=0)
    dt = 1e-5
    t1 = integ.advance([dobj], 0.0, dt)
    assert t1 == dt
    T_after = dobj.max_norm(k=0)
    assert T_after < T_before            # peak diffuses down
    assert T_after > 300.0
    assert integ.nfe >= integ.last_stages
    # adiabatic walls: total T approximately conserved (not exactly — the
    # conserved quantity is rho*cp*T and rho, cp vary with temperature)
    assert dobj.sum(k=0) == pytest.approx(total_before, rel=1e-3)


def test_rkc_stable_dt_positive_and_scales():
    f = diffusion_stack(nx=16)
    _, _, dobj = declare_flame(f)
    integ = f.services_of("rkc").provides["integrator"][0]
    dt = integ.stable_dt([dobj], 0.0)
    assert dt > 0


def test_rkc_rejects_multiple_dataobjects():
    f = diffusion_stack(nx=16)
    _, _, dobj = declare_flame(f)
    integ = f.services_of("rkc").provides["integrator"][0]
    with pytest.raises(CCAError):
        integ.advance([dobj, dobj], 0.0, 1e-6)


# --------------------------------------------------------- ErrorEstAndRegrid
def test_regrid_component_refines_hotspot():
    f = diffusion_stack(nx=16, max_levels=2)
    mesh, data, dobj = declare_flame(f, T_hot=1200.0)
    regrid = f.services_of("regrid").provides["regrid"][0]
    regrid.regrid()
    h = mesh.hierarchy()
    assert h.nlevels == 2
    assert h.level(1).ncells > 0
    assert regrid.nregrids == 1
    # fine data seeded: max T on level 1 close to the hotspot peak
    t_max_fine = max(
        float(dobj.interior(p)[0].max())
        for p in dobj.owned_patches(1))
    assert t_max_fine > 900.0


# --------------------------------------------------------- ImplicitIntegrator
def make_chemistry_stack(mode):
    f = Framework()
    b = BuilderService(f)
    (b.create(GrACEComponent, "mesh")
      .create(ThermoChemistry, "tc")
      .create(CvodeComponent, "cv")
      .create(ImplicitIntegrator, "impl")
      .parameter("mesh", "nx", 4)
      .parameter("mesh", "ny", 4)
      .parameter("impl", "mode", mode)
      .connect("cv", "rhs", "tc", "source")
      .connect("impl", "solver", "cv", "solver")
      .connect("impl", "chem", "tc", "chemistry")
      .connect("impl", "data", "mesh", "data"))
    return f


@pytest.mark.parametrize("mode", ["cvode", "batch"])
def test_implicit_integrator_ignites_hot_cells(mode):
    from repro.chemistry.h2_air import stoichiometric_h2_air

    f = make_chemistry_stack(mode)
    mesh = f.services_of("mesh").provides["mesh"][0]
    data = f.services_of("mesh").provides["data"][0]
    chem = f.services_of("tc").provides["chemistry"][0]
    mesh.build_base_level()
    mech = chem.mechanism()
    dobj = data.declare("flow", mech.n_species + 1)
    Y = np.zeros(mech.n_species)
    for nm, v in stoichiometric_h2_air().items():
        Y[mech.species_index(nm)] = v
    # seed a trace of H so the chain starts within one step (pure
    # H2/O2 initiation is astronomically slow at 1300 K)
    Y[mech.species_index("H")] = 1e-6
    Y /= Y.sum()
    for p in dobj.owned_patches():
        arr = dobj.array(p)
        arr[0] = 1300.0
        arr[1:] = Y.reshape(-1, 1, 1)
    integ = f.services_of("impl").provides["integrator"][0]
    dt = 1e-6 if mode == "batch" else 2e-6
    integ.advance([dobj], 0.0, dt)
    p0 = next(iter(dobj.owned_patches()))
    arr = dobj.interior(p0)
    # induction chemistry: T barely moves (initiation is mildly
    # endothermic) but the radical pool must have appeared
    assert np.all(np.abs(arr[0] - 1300.0) < 50.0)
    iOH = mech.species_index("OH")
    assert np.all(arr[1 + iOH] > 0.0)
    assert integ.cells_integrated == 16
    assert integ.stable_dt([dobj], 0.0) == float("inf")


def test_implicit_integrator_skips_cold_cells():
    f = make_chemistry_stack("cvode")
    f.set_parameter("impl", "skip_below_T", 600.0)
    mesh = f.services_of("mesh").provides["mesh"][0]
    data = f.services_of("mesh").provides["data"][0]
    chem = f.services_of("tc").provides["chemistry"][0]
    mesh.build_base_level()
    mech = chem.mechanism()
    dobj = data.declare("flow", mech.n_species + 1)
    for p in dobj.owned_patches():
        arr = dobj.array(p)
        arr[0] = 300.0
        arr[1:] = 0.0
        arr[1 + mech.species_index("N2")] = 1.0
    integ = f.services_of("impl").provides["integrator"][0]
    integ.advance([dobj], 0.0, 1e-5)
    assert integ.cells_integrated == 0  # everything below the threshold


def test_implicit_integrator_unknown_mode():
    f = make_chemistry_stack("bogus")
    mesh = f.services_of("mesh").provides["mesh"][0]
    data = f.services_of("mesh").provides["data"][0]
    mesh.build_base_level()
    dobj = data.declare("flow", 10)
    integ = f.services_of("impl").provides["integrator"][0]
    with pytest.raises(CCAError, match="unknown chemistry mode"):
        integ.advance([dobj], 0.0, 1e-6)
