"""Tests for the leaf components: thermochemistry, CVode wrapper, DRFM,
gas properties, statistics, flux providers, prolong/restrict, BCs."""

import numpy as np
import pytest

from repro.cca import BuilderService, Framework
from repro.components import (
    BoundaryConditions,
    CvodeComponent,
    DPDt,
    DRFMComponent,
    EFMFlux,
    GasProperties,
    GodunovFlux,
    ProblemModeler,
    ProlongRestrict,
    States,
    StatisticsComponent,
    ThermoChemistry,
)
from repro.errors import CCAError


def fw():
    return Framework()


# ------------------------------------------------------------ ThermoChemistry
def test_thermochem_default_mechanism():
    f = fw()
    BuilderService(f).create(ThermoChemistry, "tc")
    chem = f.services_of("tc").provides["chemistry"][0]
    mech = chem.mechanism()
    assert mech.n_species == 9 and mech.n_reactions == 19
    assert chem.pressure() == 101325.0


def test_thermochem_lite_mechanism_parameter():
    f = fw()
    BuilderService(f).create(ThermoChemistry, "tc").parameter(
        "tc", "mechanism", "h2-lite")
    chem = f.services_of("tc").provides["chemistry"][0]
    assert chem.mechanism().n_species == 8


def test_thermochem_unknown_mechanism():
    f = fw()
    BuilderService(f).create(ThermoChemistry, "tc").parameter(
        "tc", "mechanism", "methane")
    chem = f.services_of("tc").provides["chemistry"][0]
    with pytest.raises(CCAError, match="unknown mechanism"):
        chem.mechanism()


def test_thermochem_source_port_and_database():
    f = fw()
    BuilderService(f).create(ThermoChemistry, "tc")
    srv = f.services_of("tc")
    source = srv.provides["source"][0]
    props = srv.provides["properties"][0]
    assert source.n_state() == 10
    assert props.get("n_reactions") == 19
    assert props.get("weight:H2") == pytest.approx(2.016e-3, rel=1e-3)
    props.set("flame_speed", 2.1)
    assert props.get("flame_speed") == 2.1
    assert "mechanism" in props.keys()
    # source terms: cold pure N2 doesn't react
    y = np.zeros(10)
    y[0] = 300.0
    y[9] = 1.0  # N2
    dy = source.rhs(0.0, y)
    np.testing.assert_allclose(dy, 0.0, atol=1e-20)


def test_thermochem_source_vectorized():
    f = fw()
    BuilderService(f).create(ThermoChemistry, "tc")
    chem = f.services_of("tc").provides["chemistry"][0]
    T = np.full((3, 4), 1200.0)
    Y = np.zeros((9, 3, 4))
    Y[chem.mechanism().species_index("N2")] = 1.0
    dT, dY = chem.source_terms(T, Y)
    assert dT.shape == (3, 4) and dY.shape == (9, 3, 4)


# ---------------------------------------------------------- Cvode + modeler
def build_0d_core():
    f = fw()
    b = BuilderService(f)
    (b.create(ThermoChemistry, "tc")
      .create(DPDt, "dpdt")
      .create(ProblemModeler, "pm")
      .create(CvodeComponent, "cv")
      .connect("dpdt", "chem", "tc", "chemistry")
      .connect("pm", "chem", "tc", "chemistry")
      .connect("pm", "dpdt", "dpdt", "dpdt")
      .connect("cv", "rhs", "pm", "model"))
    return f


def test_problem_modeler_requires_density():
    f = build_0d_core()
    model = f.services_of("pm").provides["model"][0]
    with pytest.raises(CCAError, match="density"):
        model.rhs(0.0, np.ones(11))


def test_cvode_component_integrates_decaying_mode():
    """Wire CvodeComponent to the modeler and advance a short inert
    interval: state must stay finite, Y sum preserved."""
    from repro.chemistry.h2_air import stoichiometric_h2_air

    f = build_0d_core()
    model = f.services_of("pm").provides["model"][0]
    solver = f.services_of("cv").provides["solver"][0]
    chem = f.services_of("tc").provides["chemistry"][0]
    mech = chem.mechanism()
    Y = np.zeros(9)
    for nm, v in stoichiometric_h2_air().items():
        Y[mech.species_index(nm)] = v
    model.configure(900.0, 101325.0, Y)
    y0 = np.concatenate(([900.0], Y, [101325.0]))
    y1 = solver.integrate(0.0, y0, 1e-6)
    assert solver.last_nfe() > 0
    assert np.isfinite(y1).all()
    assert y1[1:-1].sum() == pytest.approx(1.0, abs=1e-8)


def test_dpdt_matches_finite_difference():
    f = build_0d_core()
    dpdt = f.services_of("dpdt").provides["dpdt"][0]
    chem = f.services_of("tc").provides["chemistry"][0]
    mech = chem.mechanism()
    Y = np.zeros(9)
    Y[mech.species_index("N2")] = 1.0
    rho = float(mech.density(1000.0, 101325.0, Y))
    dT = 100.0  # K/s, pure heating
    dP = dpdt.dpdt(rho, 1000.0, Y, dT, np.zeros(9))
    # at constant composition: dP/dT = P/T
    assert dP == pytest.approx(101325.0 / 1000.0 * dT, rel=1e-6)


# -------------------------------------------------------------------- DRFM
def test_drfm_component_provides_transport():
    f = fw()
    (BuilderService(f)
     .create(ThermoChemistry, "tc")
     .create(DRFMComponent, "drfm")
     .connect("drfm", "chem", "tc", "chemistry"))
    tr = f.services_of("drfm").provides["transport"][0]
    D = tr.diffusion_coefficients(300.0, 101325.0)
    assert D.shape == (9,)
    assert tr.conductivity(300.0) == pytest.approx(0.026)


# ------------------------------------------------------------ GasProperties
def test_gas_properties_defaults_and_overrides():
    f = fw()
    BuilderService(f).create(GasProperties, "gas")
    props = f.services_of("gas").provides["properties"][0]
    assert props.get("gamma") == 1.4
    f.set_parameter("gas", "gamma", 1.2)
    assert props.get("gamma") == 1.2
    props.set("R", 287.0)
    assert props.get("R") == 287.0
    assert "gamma" in props.keys()
    assert props.get("nope", "dflt") == "dflt"


# --------------------------------------------------------------- Statistics
def test_statistics_series_and_summary():
    f = fw()
    BuilderService(f).create(StatisticsComponent, "st")
    stats = f.services_of("st").provides["stats"][0]
    for i in range(5):
        stats.record("x", float(i), float(i * i))
    assert stats.series("x")[2] == (2.0, 4.0)
    s = stats.summary()["x"]
    assert s["n"] == 5 and s["max"] == 16.0 and s["last"] == 16.0
    with pytest.raises(CCAError):
        stats.series("missing")


# ------------------------------------------------------------ flux providers
def test_flux_components_are_interchangeable():
    gamma = 1.4
    prim = tuple(np.array([v]) for v in (1.0, 0.5, 0.0, 1.0, 0.3))
    f = fw()
    (BuilderService(f).create(GodunovFlux, "god").create(EFMFlux, "efm"))
    god = f.services_of("god").provides["flux"][0]
    efm = f.services_of("efm").provides["flux"][0]
    assert god.port_type() == efm.port_type() == "FluxPort"
    Fg = god.flux(prim, prim, gamma)
    Fe = efm.flux(prim, prim, gamma)
    np.testing.assert_allclose(Fg, Fe, rtol=1e-7)
    assert god.ncalls == 1 and efm.ncalls == 1


def test_states_component_limiter_parameter():
    f = fw()
    BuilderService(f).create(States, "st").parameter("st", "limiter",
                                                     "minmod")
    states = f.services_of("st").provides["states"][0]
    q = np.tile(np.arange(8.0), (5, 1, 1))
    qL, qR = states.interface_states(q, axis=2)
    assert qL.shape[-1] == 5
    assert states.ncalls == 1


# ---------------------------------------------------------- ProlongRestrict
def test_prolong_restrict_component_roundtrip():
    f = fw()
    BuilderService(f).create(ProlongRestrict, "pr")
    interp = f.services_of("pr").provides["interp"][0]
    c = np.random.default_rng(0).random((2, 6, 6))
    fine = interp.prolong(c, 2)
    back = interp.restrict(fine, 2)
    np.testing.assert_allclose(back, c[:, 1:-1, 1:-1], rtol=1e-12)
    assert interp.ncalls == 2


# -------------------------------------------------------- BoundaryConditions
def test_boundary_conditions_face_kinds():
    from repro.samr import Box, Patch

    f = fw()
    b = BuilderService(f).create(BoundaryConditions, "bc")
    b.parameter("bc", "y_low", "reflecting")
    b.parameter("bc", "x_low", "inflow")
    comp = f.get_component("bc")
    port = f.services_of("bc").provides["bc"][0]
    patch = Patch(0, Box((0, 0), (7, 7)), level=0, nghost=2)
    arr = np.random.default_rng(1).random((5, 12, 12)) + 1.0
    # reflecting y_low: my flipped
    port.apply(patch, arr, 1, 0)
    np.testing.assert_allclose(arr[2, :, 1], -arr[2, :, 2])
    # inflow without a state: error
    with pytest.raises(CCAError, match="inflow"):
        port.apply(patch, arr, 0, 0)
    comp.set_inflow_state(np.arange(5.0))
    port.apply(patch, arr, 0, 0)
    np.testing.assert_allclose(arr[:, 0, 5], np.arange(5.0))
    # default outflow on unset faces
    port.apply(patch, arr, 0, 1)
    np.testing.assert_allclose(arr[:, -1, :], arr[:, -3, :])
    assert port.napplied == 4
