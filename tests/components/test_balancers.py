"""Tests for the pluggable load-balancer components (future-work item 1)."""

import pytest

from repro.cca import BuilderService, Framework
from repro.components import GrACEComponent, GreedyBalancer, SFCBalancer
from repro.samr import Box


def grace_with(balancer_cls):
    fw = Framework()
    b = BuilderService(fw)
    b.create(GrACEComponent, "mesh")
    b.parameter("mesh", "nx", 16).parameter("mesh", "ny", 16)
    if balancer_cls is not None:
        b.create(balancer_cls, "lb")
        b.connect("mesh", "balancer", "lb", "balancer")
    return fw


@pytest.mark.parametrize("cls,name", [(GreedyBalancer, "greedy-lpt"),
                                      (SFCBalancer, "morton-sfc")])
def test_balancer_components_assign_valid_owners(cls, name):
    fw = Framework()
    BuilderService(fw).create(cls, "lb")
    port = fw.services_of("lb").provides["balancer"][0]
    boxes = [Box((i * 4, 0), (i * 4 + 3, 3)) for i in range(6)]
    owners = port.assign(boxes, 3)
    assert len(owners) == 6
    assert set(owners) <= {0, 1, 2}
    assert port.name() == name
    assert port.ncalls == 1


def test_grace_uses_connected_balancer():
    fw = grace_with(SFCBalancer)
    mesh = fw.services_of("mesh").provides["mesh"][0]
    mesh.build_base_level()
    lb_port = fw.services_of("lb").provides["balancer"][0]
    assert lb_port.ncalls >= 1  # GrACE routed decomposition through it


def test_grace_falls_back_to_parameter_without_connection():
    fw = grace_with(None)
    fw.set_parameter("mesh", "balancer", "sfc")
    mesh = fw.services_of("mesh").provides["mesh"][0]
    mesh.build_base_level()  # must not raise despite unconnected port
    assert mesh.hierarchy().levels[0].patches


def test_balancers_swap_like_flux_components():
    """Same assembly, one connect line changed — both build valid meshes
    (the future-work 'test a number of load balancers' scenario)."""
    metas = []
    for cls in (GreedyBalancer, SFCBalancer):
        fw = grace_with(cls)
        mesh = fw.services_of("mesh").provides["mesh"][0]
        mesh.build_base_level()
        lvl = mesh.hierarchy().levels[0]
        metas.append(sorted((p.box.lo, p.box.hi) for p in lvl.patches))
    # identical geometric decomposition; ownership policy may differ
    assert metas[0] == metas[1]
