"""Unit tests for the diffusion RHS kernel (the _div_flux stencil) and
the DiffusionPhysics component's physical behaviour."""

import numpy as np
import pytest

from repro.components.diffusion_physics import _div_flux
from repro.errors import CCAError


def test_div_flux_constant_field_is_zero():
    phi = np.full((2, 8, 8), 3.0)
    B = np.ones_like(phi)
    div = _div_flux(phi, B, 0.1, 0.1)
    assert div.shape == (2, 6, 6)
    np.testing.assert_allclose(div, 0.0, atol=1e-14)


def test_div_flux_linear_field_is_zero():
    """Constant-coefficient Laplacian annihilates linear fields."""
    x = np.arange(8.0)
    phi = (2.0 * x[:, None] + 3.0 * x[None, :])[None]
    B = np.ones_like(phi)
    div = _div_flux(phi, B, 1.0, 1.0)
    np.testing.assert_allclose(div, 0.0, atol=1e-12)


def test_div_flux_quadratic_gives_constant_laplacian():
    """phi = x^2 -> d/dx(B dphi/dx) = 2B exactly for the 3-point stencil."""
    x = np.arange(10.0)
    phi = (x[:, None] ** 2 * np.ones(6)[None, :])[None]
    B = np.full_like(phi, 1.5)
    div = _div_flux(phi, B, 1.0, 1.0)
    np.testing.assert_allclose(div, 3.0, rtol=1e-12)


def test_div_flux_variable_coefficient_face_average():
    """One step in B: flux at the face uses the arithmetic mean."""
    phi = np.zeros((1, 4, 3))
    phi[0, :, :] = np.array([0.0, 1.0, 2.0, 3.0])[:, None]
    B = np.ones_like(phi)
    B[0, 2:, :] = 3.0  # B jumps between cells 1 and 2
    div = _div_flux(phi, B, 1.0, 1.0)
    # interior cell i=1: F_{3/2} = mean(1,3)*1 = 2, F_{1/2} = 1 -> div = 1
    assert div[0, 0, 0] == pytest.approx(1.0)


def test_div_flux_conserves_interior_sum_for_zero_flux_edges():
    """With mirrored ghosts (zero edge flux) the stencil telescopes."""
    rng = np.random.default_rng(0)
    core = rng.random((1, 6, 6))
    phi = np.pad(core, ((0, 0), (1, 1), (1, 1)), mode="edge")
    B = np.ones_like(phi)
    div = _div_flux(phi, B, 1.0, 1.0)
    assert div[0].sum() == pytest.approx(0.0, abs=1e-12)


def test_diffusion_component_wrong_variable_count():
    from repro.cca import BuilderService, Framework
    from repro.components import (DRFMComponent, DiffusionPhysics,
                                  GrACEComponent, ThermoChemistry)
    from repro.samr import Box, Patch

    f = Framework()
    (BuilderService(f)
     .create(GrACEComponent, "mesh")
     .create(ThermoChemistry, "tc")
     .create(DRFMComponent, "drfm")
     .create(DiffusionPhysics, "diff")
     .connect("drfm", "chem", "tc", "chemistry")
     .connect("diff", "transport", "drfm", "transport")
     .connect("diff", "chem", "tc", "chemistry")
     .connect("diff", "mesh", "mesh", "mesh"))
    comp = f.get_component("diff")
    patch = Patch(0, Box((0, 0), (3, 3)), 0, nghost=2)
    with pytest.raises(CCAError, match="species"):
        comp.evaluate(patch, np.zeros((3, 8, 8)))
