"""Shared test configuration.

Tests force ``REPRO_FAST`` problem sizes so the suite stays quick; the
benchmarks under ``benchmarks/`` run the paper-scale configurations.
"""

import os

os.environ.setdefault("REPRO_FAST", "1")
