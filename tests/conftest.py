"""Shared test configuration.

Tests force ``REPRO_FAST`` problem sizes so the suite stays quick; the
benchmarks under ``benchmarks/`` run the paper-scale configurations.

Trajectory appending is off by default so unit tests that exercise
``save_json`` never touch the committed repo-root ``BENCH_*.json``
ledgers (the trajectory tests re-enable it into a tmp dir).
"""

import os

os.environ.setdefault("REPRO_FAST", "1")
os.environ.setdefault("REPRO_TRAJECTORY", "0")
