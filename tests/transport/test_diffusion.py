"""Tests for mixture-averaged transport properties."""

import numpy as np
import pytest

from repro.chemistry import h2_air_mechanism, h2_lite_mechanism
from repro.chemistry.h2_air import stoichiometric_h2_air
from repro.errors import ChemistryError
from repro.transport import MixtureTransport


@pytest.fixture(scope="module")
def tr():
    return MixtureTransport(h2_air_mechanism())


def stoich(mech):
    Y = np.zeros(mech.n_species)
    for nm, val in stoichiometric_h2_air().items():
        Y[mech.species_index(nm)] = val
    return Y


def test_reference_values_at_300k(tr):
    D = tr.diffusion_coefficients(300.0, 101325.0)
    iH2 = tr.mech.species_index("H2")
    iN2 = tr.mech.species_index("N2")
    assert D[iH2] == pytest.approx(7.8e-5, rel=1e-12)
    assert D[iN2] == pytest.approx(2.0e-5, rel=1e-12)


def test_light_species_diffuse_fastest(tr):
    D = tr.diffusion_coefficients(1000.0, 101325.0)
    names = tr.mech.names
    dmap = {nm: float(D[i]) for i, nm in enumerate(names)}
    assert dmap["H"] > dmap["H2"] > dmap["O2"]


def test_temperature_and_pressure_scaling(tr):
    d300 = tr.diffusion_coefficients(300.0, 101325.0)
    d600 = tr.diffusion_coefficients(600.0, 101325.0)
    np.testing.assert_allclose(d600 / d300, 2.0**1.7)
    d2atm = tr.diffusion_coefficients(300.0, 2 * 101325.0)
    np.testing.assert_allclose(d2atm / d300, 0.5)


def test_vectorized_over_fields(tr):
    T = np.array([[300.0, 600.0], [900.0, 1200.0]])
    D = tr.diffusion_coefficients(T, 101325.0)
    assert D.shape == (9, 2, 2)
    assert np.all(D[:, 1, 1] > D[:, 0, 0])


def test_conductivity_monotone(tr):
    assert tr.conductivity(300.0) == pytest.approx(0.026)
    assert tr.conductivity(1500.0) > tr.conductivity(300.0)


def test_thermal_diffusivity_magnitude(tr):
    """Air-like alpha at 300 K, 1 atm is ~2.2e-5 m^2/s."""
    Y = stoich(tr.mech)
    alpha = tr.thermal_diffusivity(300.0, 101325.0, Y)
    assert 1e-5 < float(alpha) < 5e-5


def test_max_diffusion_coefficient_dominated_by_H(tr):
    Y = stoich(tr.mech)
    dmax = tr.max_diffusion_coefficient(1000.0, 101325.0, Y)
    iH = tr.mech.species_index("H")
    D = tr.diffusion_coefficients(1000.0, 101325.0)
    assert dmax == pytest.approx(float(D[iH]))


def test_works_for_lite_mechanism():
    tr8 = MixtureTransport(h2_lite_mechanism())
    D = tr8.diffusion_coefficients(500.0, 101325.0)
    assert D.shape == (8,)


def test_missing_species_rejected():
    from repro.chemistry import Mechanism, Species
    from repro.chemistry.nasa7 import Nasa7

    fake = Species("XY", {"H": 1}, Nasa7((1.0,) * 7, (1.0,) * 7))
    mech = Mechanism("fake", [fake], [])
    with pytest.raises(ChemistryError, match="XY"):
        MixtureTransport(mech)
