"""Tests for limiters, MUSCL reconstruction, the assembled Euler RHS
(Sod shock-tube evolution), boundary fills and diagnostics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HydroError
from repro.hydro import (
    EulerState,
    cfl_dt,
    efm_flux,
    euler_rhs,
    fill_inflow,
    fill_outflow,
    fill_reflecting,
    interface_circulation,
    mc_limiter,
    minmod,
    muscl_interface_states,
    prim_to_cons,
    superbee,
    van_leer,
    vorticity,
)
from repro.hydro.state import IMX, IMY, cons_to_prim
from repro.integrators import rk2_step

GAMMA = 1.4
LIMITERS = [minmod, van_leer, mc_limiter, superbee]


# ---------------------------------------------------------------- limiters
@settings(max_examples=50)
@given(st.floats(-10, 10, allow_nan=False), st.floats(-10, 10, allow_nan=False))
def test_limiters_vanish_at_extrema(a, b):
    """Opposite-sign differences (an extremum) must give zero slope."""
    if a * b <= 0:
        for lim in LIMITERS:
            assert lim(np.array([a]), np.array([b]))[0] == 0.0


@settings(max_examples=50)
@given(st.floats(0.01, 10), st.floats(0.01, 10))
def test_limiters_symmetric_and_bounded(a, b):
    for lim in LIMITERS:
        s1 = lim(np.array([a]), np.array([b]))[0]
        s2 = lim(np.array([b]), np.array([a]))[0]
        assert s1 == pytest.approx(s2, rel=1e-12)
        assert 0.0 <= s1 <= 2.0 * min(a, b) + 1e-12


def test_limiters_exact_on_uniform_slope():
    for lim in LIMITERS:
        assert lim(np.array([1.0]), np.array([1.0]))[0] == pytest.approx(1.0)


def test_limiter_diffusivity_ordering():
    """minmod <= van_leer <= MC on a generic smooth pair."""
    a, b = np.array([1.0]), np.array([2.0])
    assert minmod(a, b)[0] <= van_leer(a, b)[0] <= mc_limiter(a, b)[0]


# ------------------------------------------------------------------- MUSCL
def test_muscl_exact_on_linear_data():
    q = np.arange(10, dtype=float)
    qL, qR = muscl_interface_states(q)
    # interface k+3/2 between cells k+1, k+2 -> value k+1.5
    np.testing.assert_allclose(qL, np.arange(1.5, 8.5))
    np.testing.assert_allclose(qR, qL)


def test_muscl_monotone_at_discontinuity():
    q = np.array([0.0, 0.0, 0.0, 1.0, 1.0, 1.0])
    qL, qR = muscl_interface_states(q, limiter="minmod")
    assert np.all(qL >= 0.0) and np.all(qL <= 1.0)
    assert np.all(qR >= 0.0) and np.all(qR <= 1.0)


def test_muscl_axis_and_leading_dims():
    q = np.tile(np.arange(8.0), (3, 5, 1))
    qL, qR = muscl_interface_states(q, axis=2)
    assert qL.shape == (3, 5, 5)
    q_t = np.swapaxes(q, 1, 2)
    qLt, _ = muscl_interface_states(q_t, axis=1)
    np.testing.assert_allclose(np.swapaxes(qLt, 1, 2), qL)


def test_muscl_errors():
    with pytest.raises(HydroError):
        muscl_interface_states(np.zeros(3))
    with pytest.raises(HydroError):
        muscl_interface_states(np.zeros(8), limiter="bogus")


# -------------------------------------------------------------------- RHS
def sod_patch(nx=100, g=2):
    """1-D Sod tube embedded in a 2-D patch (4 cells in y)."""
    ny = 4
    rho = np.where(np.arange(nx) < nx // 2, 1.0, 0.125)
    p = np.where(np.arange(nx) < nx // 2, 1.0, 0.1)
    zeta = np.where(np.arange(nx) < nx // 2, 1.0, 0.0)
    U = prim_to_cons(
        np.tile(rho[:, None], (1, ny)),
        0.0, 0.0,
        np.tile(p[:, None], (1, ny)),
        np.tile(zeta[:, None], (1, ny)), GAMMA)
    Ug = np.zeros((5, nx + 2 * g, ny + 2 * g))
    Ug[:, g:-g, g:-g] = U
    return Ug


def fill_bc_sod(Ug, g=2):
    fill_outflow(Ug, 0, 0, g)
    fill_outflow(Ug, 0, 1, g)
    fill_outflow(Ug, 1, 0, g)
    fill_outflow(Ug, 1, 1, g)


@pytest.mark.parametrize("flux", ["godunov", "efm"])
def test_sod_evolution_matches_exact(flux):
    """March the Sod problem to t = 0.2 and compare with the exact star
    state in the plateau region."""
    from repro.hydro import godunov_flux

    nx, g = 100, 2
    dx = 1.0 / nx
    fx = godunov_flux if flux == "godunov" else efm_flux
    Ug = sod_patch(nx, g)
    t, t_end = 0.0, 0.2
    while t < t_end - 1e-12:
        fill_bc_sod(Ug, g)
        dt = min(cfl_dt(Ug[:, g:-g, g:-g], dx, 1.0, GAMMA, cfl=0.4),
                 t_end - t)

        def rhs(tt, U):
            W = U.copy()
            fill_bc_sod(W, g)
            out = np.zeros_like(U)
            out[:, g:-g, g:-g] = euler_rhs(W, dx, 1e9, GAMMA, flux_fn=fx)
            return out

        Ug = rk2_step(rhs, t, Ug, dt)
        t += dt
    rho, u, v, p, zeta = cons_to_prim(Ug[:, g:-g, g:-g], GAMMA)
    mid = rho[:, 2]
    # contact plateau: between contact (~x=0.685) and shock (~x=0.85)
    i_plateau = int(0.75 * nx)
    assert p[i_plateau, 2] == pytest.approx(0.30313, rel=0.05)
    assert u[i_plateau, 2] == pytest.approx(0.92745, rel=0.05)
    # density right of the contact: 0.26557
    assert mid[i_plateau] == pytest.approx(0.26557, rel=0.08)
    # monotonic zeta transition tracks the contact near x ~ 0.685
    icontact = int(np.argmin(np.abs(zeta[:, 2] - 0.5)))
    assert abs(icontact * 1.0 / nx - 0.685) < 0.05


def test_sod_conservation():
    """Mass, momentum, energy exactly conserved with outflow far away."""
    nx, g = 64, 2
    dx = 1.0 / nx
    Ug = sod_patch(nx, g)
    before = Ug[:, g:-g, g:-g].sum(axis=(1, 2))
    fill_bc_sod(Ug, g)
    dU = euler_rhs(Ug, dx, 1e9, GAMMA)
    after = (Ug[:, g:-g, g:-g] + 1e-3 * dU).sum(axis=(1, 2))
    # interior flux differences telescope; only boundary fluxes remain.
    # With symmetric-in-y setup, y-fluxes cancel; x boundary flux is the
    # quiescent left/right states' flux (pressure terms on momentum).
    assert after[0] == pytest.approx(before[0], rel=1e-12)  # mass
    assert after[4] == pytest.approx(before[4], rel=1e-12)  # zeta


def test_rhs_zero_for_uniform_flow():
    g = 2
    W = EulerState(1.0, 0.3, -0.2, 1.0, 0.5).conserved(GAMMA)
    Ug = np.tile(W.reshape(5, 1, 1), (1, 12, 12))
    dU = euler_rhs(Ug, 0.1, 0.1, GAMMA)
    np.testing.assert_allclose(dU, 0.0, atol=1e-10)


def test_rhs_needs_two_ghosts():
    with pytest.raises(HydroError):
        euler_rhs(np.zeros((5, 8, 8)), 0.1, 0.1, GAMMA, nghost=1)


def test_cfl_dt_scales():
    W = EulerState(1.0, 0.0, 0.0, 1.0).conserved(GAMMA)
    U = np.tile(W.reshape(5, 1, 1), (1, 4, 4))
    dt1 = cfl_dt(U, 0.1, 0.1, GAMMA, cfl=0.4)
    dt2 = cfl_dt(U, 0.05, 0.05, GAMMA, cfl=0.4)
    assert dt1 == pytest.approx(2 * dt2)
    with pytest.raises(HydroError):
        cfl_dt(U, 0.1, 0.1, GAMMA, cfl=1.5)


# ---------------------------------------------------------------- BC fills
def test_reflecting_wall_mirrors_and_flips():
    g = 2
    Ug = sod_patch(16, g)
    fill_reflecting(Ug, 0, 0, g)
    # ghost layer g-1 mirrors interior layer g, with mx negated
    np.testing.assert_allclose(Ug[IMX, g - 1, :], -Ug[IMX, g, :])
    np.testing.assert_allclose(Ug[0, g - 1, :], Ug[0, g, :])
    np.testing.assert_allclose(Ug[0, 0, :], Ug[0, 2 * g - 1, :])
    # y-wall flips my instead
    fill_reflecting(Ug, 1, 1, g)
    np.testing.assert_allclose(Ug[IMY, :, -g], -Ug[IMY, :, -g - 1])


def test_reflecting_wall_no_flux_through():
    """A wall-adjacent uniform gas at rest must stay at rest."""
    g = 2
    W = EulerState(1.0, 0.0, 0.0, 1.0).conserved(GAMMA)
    Ug = np.tile(W.reshape(5, 1, 1), (1, 12, 12))
    for axis in (0, 1):
        for side in (0, 1):
            fill_reflecting(Ug, axis, side, g)
    dU = euler_rhs(Ug, 0.1, 0.1, GAMMA)
    np.testing.assert_allclose(dU, 0.0, atol=1e-10)


def test_inflow_fill():
    g = 2
    Ug = sod_patch(16, g)
    state = EulerState(2.0, 3.0, 0.0, 5.0, 1.0).conserved(GAMMA)
    fill_inflow(Ug, 0, 0, g, state)
    np.testing.assert_allclose(Ug[:, 0, 5], state)
    with pytest.raises(HydroError):
        fill_inflow(Ug, 0, 0, g, np.ones(3))


# -------------------------------------------------------------- diagnostics
def test_vorticity_of_solid_body_rotation():
    """u = -Omega*y, v = Omega*x -> omega = 2*Omega everywhere."""
    n, g = 16, 1
    omega0 = 0.7
    x = (np.arange(n + 2 * g) - g + 0.5) * 0.1
    y = (np.arange(n + 2 * g) - g + 0.5) * 0.1
    X, Y = np.meshgrid(x, y, indexing="ij")
    U = prim_to_cons(np.ones_like(X), -omega0 * Y, omega0 * X,
                     np.ones_like(X), np.zeros_like(X), GAMMA)
    w = vorticity(U, 0.1, 0.1, GAMMA)
    np.testing.assert_allclose(w, 2 * omega0, rtol=1e-10)


def test_interface_circulation_band_selection():
    n, g = 16, 1
    shape = (n + 2 * g, n + 2 * g)
    # shear layer: u jumps across y -> negative du/dy -> omega = -du/dy > 0
    y = (np.arange(shape[1]) - g + 0.5) / n
    u = np.tile(np.tanh((y - 0.5) * 20)[None, :], (shape[0], 1))
    zeta = np.tile(((y > 0.4) & (y < 0.6)).astype(float)[None, :] * 0.5,
                   (shape[0], 1))
    U = prim_to_cons(np.ones(shape), u, np.zeros(shape), np.ones(shape),
                     zeta, GAMMA)
    gamma_band = interface_circulation(U, 1.0 / n, 1.0 / n, GAMMA)
    assert gamma_band < 0.0  # omega = -du/dy < 0 in the shear band
    # widening the band can only add magnitude
    gamma_all = interface_circulation(U, 1.0 / n, 1.0 / n, GAMMA,
                                      zeta_lo=-1, zeta_hi=2)
    assert abs(gamma_all) >= abs(gamma_band)


def test_vorticity_too_small_raises():
    with pytest.raises(HydroError):
        vorticity(np.ones((5, 2, 5)), 0.1, 0.1, GAMMA)
