"""Tests for the exact Riemann solver against Toro's reference solutions,
plus flux consistency for Godunov and EFM."""

import numpy as np
import pytest

from repro.errors import HydroError
from repro.hydro import (
    EulerState,
    efm_flux,
    godunov_flux,
    riemann_exact,
    sample_riemann,
)
from repro.hydro.state import euler_flux_x

GAMMA = 1.4


# ------------------------------------------------------- star states (Toro)
def test_sod_star_state():
    """Toro test 1 (Sod): p* = 0.30313, u* = 0.92745."""
    p, u = riemann_exact(1.0, 0.0, 1.0, 0.125, 0.0, 0.1, GAMMA)
    assert p == pytest.approx(0.30313, rel=1e-4)
    assert u == pytest.approx(0.92745, rel=1e-4)


def test_toro_test2_123_problem():
    """Toro test 2 (double rarefaction): p* = 0.00189, u* = 0."""
    p, u = riemann_exact(1.0, -2.0, 0.4, 1.0, 2.0, 0.4, GAMMA)
    assert p == pytest.approx(0.00189, rel=5e-2)
    assert u == pytest.approx(0.0, abs=1e-10)


def test_toro_test3_strong_shock():
    """Toro test 3: pL = 1000; p* = 460.894, u* = 19.5975."""
    p, u = riemann_exact(1.0, 0.0, 1000.0, 1.0, 0.0, 0.01, GAMMA)
    assert p == pytest.approx(460.894, rel=1e-4)
    assert u == pytest.approx(19.5975, rel=1e-4)


def test_toro_test5_two_shocks():
    """Toro test 5: colliding streams; p* = 1691.64, u* = 8.68975."""
    p, u = riemann_exact(5.99924, 19.5975, 460.894,
                         5.99242, -6.19633, 46.0950, GAMMA)
    assert p == pytest.approx(1691.64, rel=1e-3)
    assert u == pytest.approx(8.68975, rel=1e-3)


def test_vectorized_star_states():
    p, u = riemann_exact(
        np.array([1.0, 1.0]), np.array([0.0, 0.0]),
        np.array([1.0, 1000.0]),
        np.array([0.125, 1.0]), np.array([0.0, 0.0]),
        np.array([0.1, 0.01]), GAMMA)
    assert p[0] == pytest.approx(0.30313, rel=1e-4)
    assert p[1] == pytest.approx(460.894, rel=1e-4)


def test_trivial_riemann_identity():
    """Equal states: star = that state, no waves."""
    p, u = riemann_exact(1.0, 0.5, 2.0, 1.0, 0.5, 2.0, GAMMA)
    assert p == pytest.approx(2.0, rel=1e-10)
    assert u == pytest.approx(0.5, rel=1e-10)


def test_vacuum_detected():
    with pytest.raises(HydroError):
        riemann_exact(1.0, -10.0, 0.1, 1.0, 10.0, 0.1, GAMMA)


def test_nonphysical_input_rejected():
    with pytest.raises(HydroError):
        riemann_exact(-1.0, 0.0, 1.0, 1.0, 0.0, 1.0, GAMMA)


# --------------------------------------------------------------- sampling
def test_sample_symmetric_problem_stagnates():
    """Mirror-symmetric collision: interface state has u = 0."""
    rho, u, v, p, zeta = sample_riemann(
        1.0, 1.0, 0.3, 1.0, 0.0,
        1.0, -1.0, 0.7, 1.0, 1.0, GAMMA)
    assert abs(u) < 1e-10
    assert p > 1.0  # compression


def test_sample_passive_scalars_follow_contact():
    # contact moves right (u* > 0): take left zeta/v
    _, u, v, _, zeta = sample_riemann(
        1.0, 1.0, 0.25, 1.0, 0.5,
        1.0, 1.0, 0.75, 1.0, 1.5, GAMMA)
    assert u > 0
    assert v == 0.25 and zeta == 0.5


def test_sample_supersonic_left_state():
    """Supersonic rightward flow: interface state is the left state."""
    rho, u, v, p, zeta = sample_riemann(
        1.0, 10.0, 0.0, 1.0, 0.1,
        0.5, 10.0, 0.0, 0.5, 0.9, GAMMA)
    assert rho == pytest.approx(1.0, rel=1e-8)
    assert p == pytest.approx(1.0, rel=1e-8)
    assert zeta == 0.1


# ---------------------------------------------------------------- fluxes
@pytest.mark.parametrize("flux", [godunov_flux, efm_flux])
def test_flux_consistency_equal_states(flux):
    """F(W, W) must equal the exact Euler flux of W."""
    W = EulerState(rho=1.3, u=0.7, v=-0.4, p=2.1, zeta=0.6)
    prim = tuple(np.array([x]) for x in (W.rho, W.u, W.v, W.p, W.zeta))
    F = flux(prim, prim, GAMMA)
    exact = euler_flux_x(W.conserved(GAMMA).reshape(5, 1), GAMMA)
    np.testing.assert_allclose(F, exact, rtol=1e-7, atol=1e-12)


@pytest.mark.parametrize("flux", [godunov_flux, efm_flux])
def test_flux_upwinds_supersonic(flux):
    """Fully supersonic rightward flow: flux ~ left-state flux."""
    L = EulerState(rho=1.0, u=5.0, v=0.0, p=1.0, zeta=1.0)
    R = EulerState(rho=0.3, u=5.0, v=0.0, p=0.4, zeta=0.0)
    priml = tuple(np.array([x]) for x in (L.rho, L.u, L.v, L.p, L.zeta))
    primr = tuple(np.array([x]) for x in (R.rho, R.u, R.v, R.p, R.zeta))
    F = flux(priml, primr, GAMMA)
    exact = euler_flux_x(L.conserved(GAMMA).reshape(5, 1), GAMMA)
    np.testing.assert_allclose(F, exact, rtol=2e-2)


def test_efm_more_diffusive_than_godunov_on_contact():
    """A stationary contact: Godunov keeps it exactly (zero mass flux);
    EFM's kinetic averaging leaks mass across — the diffusivity the paper
    trades for robustness at Mach 3.5."""
    priml = tuple(np.array([x]) for x in (1.0, 0.0, 0.0, 1.0, 1.0))
    primr = tuple(np.array([x]) for x in (0.25, 0.0, 0.0, 1.0, 0.0))
    Fg = godunov_flux(priml, primr, GAMMA)
    Fe = efm_flux(priml, primr, GAMMA)
    assert abs(Fg[0, 0]) < 1e-12          # exact: no mass flux
    assert abs(Fe[0, 0]) > 1e-3           # kinetic: diffusive mass flux


def test_euler_state_validation():
    with pytest.raises(HydroError):
        EulerState(rho=-1.0, u=0.0, v=0.0, p=1.0).conserved(GAMMA)
    s = EulerState(rho=1.0, u=0.0, v=0.0, p=1.4)
    assert s.sound_speed(GAMMA) == pytest.approx(1.4)
