"""Property-based tests (hypothesis) on the hydrodynamics kernels."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.hydro import (
    EulerState,
    cons_to_prim,
    efm_flux,
    godunov_flux,
    prim_to_cons,
    riemann_exact,
    sample_riemann,
)
from repro.hydro.state import euler_flux_x

GAMMA = 1.4

rhos = st.floats(0.05, 10.0, allow_nan=False)
vels = st.floats(-3.0, 3.0, allow_nan=False)
press = st.floats(0.05, 10.0, allow_nan=False)
zetas = st.floats(0.0, 1.0, allow_nan=False)


@settings(max_examples=60, deadline=None)
@given(rhos, vels, vels, press, zetas)
def test_cons_prim_roundtrip(rho, u, v, p, zeta):
    U = prim_to_cons(np.array([rho]), np.array([u]), np.array([v]),
                     np.array([p]), np.array([zeta]), GAMMA)
    r2, u2, v2, p2, z2 = cons_to_prim(U, GAMMA)
    assert r2[0] == pytest.approx(rho, rel=1e-12)
    assert u2[0] == pytest.approx(u, rel=1e-9, abs=1e-12)
    assert p2[0] == pytest.approx(p, rel=1e-9)
    assert z2[0] == pytest.approx(zeta, rel=1e-9, abs=1e-12)


@settings(max_examples=40, deadline=None)
@given(rhos, vels, press, rhos, vels, press)
def test_riemann_star_state_properties(rl, ul, pl, rr, ur, pr):
    """p* > 0 always; u* between characteristics; consistency when the
    states are equal."""
    al = np.sqrt(GAMMA * pl / rl)
    ar = np.sqrt(GAMMA * pr / rr)
    assume(2 * (al + ar) / (GAMMA - 1) > (ur - ul) + 0.1)  # no vacuum
    p_star, u_star = riemann_exact(rl, ul, pl, rr, ur, pr, GAMMA)
    assert p_star > 0.0
    # rigorous bounds: u* = ul - f_L(p*) with f_L >= -2 a_l/(gamma-1), and
    # u* = ur + f_R(p*) with f_R >= -2 a_r/(gamma-1)
    assert u_star <= ul + 2 * al / (GAMMA - 1) + 1e-9
    assert u_star >= ur - 2 * ar / (GAMMA - 1) - 1e-9


@settings(max_examples=40, deadline=None)
@given(rhos, vels, press, zetas)
def test_fluxes_consistent_with_exact(rho, u, p, zeta):
    """F(W, W) == exact flux for both Godunov and EFM, any state."""
    prim = tuple(np.array([x]) for x in (rho, u, 0.3, p, zeta))
    W = EulerState(rho, u, 0.3, p, zeta).conserved(GAMMA).reshape(5, 1)
    exact = euler_flux_x(W, GAMMA)
    for flux in (godunov_flux, efm_flux):
        F = flux(prim, prim, GAMMA)
        np.testing.assert_allclose(F, exact, rtol=1e-6, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(rhos, vels, press, rhos, vels, press)
def test_sampled_state_is_physical(rl, ul, pl, rr, ur, pr):
    al = np.sqrt(GAMMA * pl / rl)
    ar = np.sqrt(GAMMA * pr / rr)
    assume(2 * (al + ar) / (GAMMA - 1) > (ur - ul) + 0.1)
    rho, u, v, p, zeta = sample_riemann(
        rl, ul, 0.0, pl, 1.0, rr, ur, 0.0, pr, 0.0, GAMMA)
    assert rho > 0.0 and p > 0.0
    assert zeta in (0.0, 1.0)  # passive scalar takes one side


@settings(max_examples=40, deadline=None)
@given(rhos, vels, press, rhos, vels, press)
def test_godunov_flux_mirror_symmetry(rl, ul, pl, rr, ur, pr):
    """Mirroring the problem (x -> -x) negates mass flux and preserves the
    momentum flux: F_rho(L,R) = -F_rho(mirror R, mirror L)."""
    al = np.sqrt(GAMMA * pl / rl)
    ar = np.sqrt(GAMMA * pr / rr)
    assume(2 * (al + ar) / (GAMMA - 1) > abs(ur - ul) + 0.2)
    priml = tuple(np.array([x]) for x in (rl, ul, 0.0, pl, 0.5))
    primr = tuple(np.array([x]) for x in (rr, ur, 0.0, pr, 0.5))
    ml = tuple(np.array([x]) for x in (rr, -ur, 0.0, pr, 0.5))
    mr = tuple(np.array([x]) for x in (rl, -ul, 0.0, pl, 0.5))
    F = godunov_flux(priml, primr, GAMMA)
    Fm = godunov_flux(ml, mr, GAMMA)
    assert F[0, 0] == pytest.approx(-Fm[0, 0], rel=1e-7, abs=1e-10)
    assert F[1, 0] == pytest.approx(Fm[1, 0], rel=1e-7, abs=1e-10)


@settings(max_examples=40, deadline=None)
@given(rhos, vels, press, rhos, vels, press)
def test_efm_flux_mirror_symmetry(rl, ul, pl, rr, ur, pr):
    priml = tuple(np.array([x]) for x in (rl, ul, 0.0, pl, 0.5))
    primr = tuple(np.array([x]) for x in (rr, ur, 0.0, pr, 0.5))
    ml = tuple(np.array([x]) for x in (rr, -ur, 0.0, pr, 0.5))
    mr = tuple(np.array([x]) for x in (rl, -ul, 0.0, pl, 0.5))
    F = efm_flux(priml, primr, GAMMA)
    Fm = efm_flux(ml, mr, GAMMA)
    assert F[0, 0] == pytest.approx(-Fm[0, 0], rel=1e-9, abs=1e-12)
    assert F[1, 0] == pytest.approx(Fm[1, 0], rel=1e-9, abs=1e-12)
