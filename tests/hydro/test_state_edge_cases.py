"""Edge-case tests for Euler state handling and wave speeds."""

import numpy as np
import pytest

from repro.errors import HydroError
from repro.hydro import (
    EulerState,
    cons_to_prim,
    max_wavespeed,
    prim_to_cons,
    sound_speed,
)
from repro.hydro.state import euler_flux_x

GAMMA = 1.4


def test_negative_density_detected():
    U = prim_to_cons(np.array([1.0]), 0.0, 0.0, np.array([1.0]), 0.0,
                     GAMMA)
    U[0, 0] = -0.1
    with pytest.raises(HydroError, match="density"):
        cons_to_prim(U, GAMMA)


def test_negative_pressure_detected():
    U = prim_to_cons(np.array([1.0]), 0.0, 0.0, np.array([1.0]), 0.0,
                     GAMMA)
    U[3, 0] = 0.0  # energy below kinetic floor
    with pytest.raises(HydroError, match="pressure"):
        cons_to_prim(U, GAMMA)


def test_check_false_permits_bad_states():
    U = prim_to_cons(np.array([1.0]), 0.0, 0.0, np.array([1.0]), 0.0,
                     GAMMA)
    U[3, 0] = 0.0
    rho, u, v, p, zeta = cons_to_prim(U, GAMMA, check=False)
    assert p[0] <= 0.0  # reported, not raised (reconstruction floors it)


def test_sound_speed_scaling():
    assert sound_speed(1.0, 1.4, GAMMA) == pytest.approx(1.4)
    assert sound_speed(4.0, 1.4, GAMMA) == pytest.approx(0.7)


def test_max_wavespeed_includes_both_directions():
    # fast v, slow u: the y-speed must dominate
    U = prim_to_cons(np.array([[1.0]]), np.array([[0.1]]),
                     np.array([[2.0]]), np.array([[1.0]]), 0.0, GAMMA)
    s = max_wavespeed(U, GAMMA)
    a = np.sqrt(GAMMA)
    assert s == pytest.approx(2.0 + a)


def test_flux_of_quiescent_gas_is_pressure_only():
    U = EulerState(2.0, 0.0, 0.0, 3.0, 0.5).conserved(GAMMA).reshape(5, 1)
    F = euler_flux_x(U, GAMMA)
    np.testing.assert_allclose(F[[0, 2, 3, 4], 0], 0.0, atol=1e-14)
    assert F[1, 0] == pytest.approx(3.0)


def test_zeta_rides_density():
    s = EulerState(2.0, 1.0, 0.0, 1.0, zeta=0.25)
    U = s.conserved(GAMMA)
    assert U[4] == pytest.approx(0.5)  # rho * zeta
    rho, u, v, p, zeta = cons_to_prim(U.reshape(5, 1), GAMMA)
    assert zeta[0] == pytest.approx(0.25)
