"""Tests for the rc-script parser/runner and SCMD multiplexing."""

import numpy as np
import pytest

from repro.cca import Component, Framework, Port, parse_script, run_scmd, run_script
from repro.cca.ports import GoPort
from repro.errors import ScriptError
from repro.mpi import ZERO_COST


class EchoPort(Port):
    def value(self):
        raise NotImplementedError


class _EchoImpl(EchoPort):
    def __init__(self, services):
        self.services = services

    def value(self):
        return self.services.get_parameter("payload", "empty")


class Echo(Component):
    def set_services(self, services):
        services.add_provides_port(_EchoImpl(services), "out")


class _DriverGo(GoPort):
    def __init__(self, services):
        self.services = services

    def go(self):
        return self.services.get_port("in").value()


class Driver(Component):
    def set_services(self, services):
        services.register_uses_port("in", "EchoPort")
        services.add_provides_port(_DriverGo(services), "go")


class RankReporter(Component):
    def set_services(self, services):
        self.services = services

        class _Go(GoPort):
            def go(inner):
                comm = self.services.get_comm()
                total = comm.allreduce(comm.rank + 1)
                return (comm.rank, comm.size, total)

        services.add_provides_port(_Go(), "go")


SCRIPT = """
# assembly for the echo application
repository get-global Echo
repository get-global Driver

instantiate Echo source
create Driver sink          # 'create' is an alias
parameter source payload 42
connect sink in source out
go sink
"""


# ------------------------------------------------------------------ parsing
def test_parse_basic():
    ds = parse_script(SCRIPT)
    verbs = [d.verb for d in ds]
    assert verbs == ["repository", "repository", "instantiate",
                     "instantiate", "parameter", "connect", "go"]


def test_parse_comments_and_blanks_skipped():
    assert parse_script("# only comments\n\n   \n") == []


@pytest.mark.parametrize("bad", [
    "frobnicate x",
    "instantiate OnlyOneArg",
    "connect a b c",
    "parameter x y",
    "go",
    "repository put-global X",
])
def test_parse_rejects_bad_lines(bad):
    with pytest.raises(ScriptError):
        parse_script(bad)


def test_parse_reports_line_numbers():
    with pytest.raises(ScriptError, match="line 3"):
        parse_script("# one\n# two\nbogus directive\n")


def test_parse_accumulates_all_errors():
    text = "bogus one\ninstantiate Echo e\nconnect a b\ngo\n"
    with pytest.raises(ScriptError) as excinfo:
        parse_script(text)
    message = str(excinfo.value)
    assert "line 1" in message
    assert "line 3" in message
    assert "line 4" in message
    assert "line 2" not in message


def test_parse_script_tolerant_returns_good_directives():
    from repro.cca.script import parse_script_tolerant

    directives, errors = parse_script_tolerant(
        "bogus one\ninstantiate Echo e\nconnect a b\n")
    assert [(d.verb, d.line_no) for d in directives] == [("instantiate", 2)]
    assert [line_no for line_no, _msg in errors] == [1, 3]
    assert all(msg.startswith(f"line {n}") for n, msg in errors)


# ------------------------------------------------------------------ running
def make_framework():
    fw = Framework()
    fw.registry.register_many([Echo, Driver])
    return fw


def test_run_script_full_assembly():
    fw = make_framework()
    results = run_script(fw, SCRIPT)
    assert results == [42]  # parameter parsed as int


def test_parameter_value_parsing():
    fw = make_framework()
    run_script(fw, "instantiate Echo e\nparameter e payload 2.5\n")
    assert fw.services_of("e").get_parameter("payload") == 2.5
    run_script(fw, "parameter e other hello world\n")
    assert fw.services_of("e").get_parameter("other") == "hello world"


def test_repository_check_fails_for_unknown():
    fw = make_framework()
    with pytest.raises(ScriptError, match="Unknown|unknown"):
        run_script(fw, "repository get-global Missing\n")


def test_runtime_error_wrapped_with_line():
    fw = make_framework()
    with pytest.raises(ScriptError, match="line 1"):
        run_script(fw, "connect a b c d\n")


def test_go_without_connection_fails():
    fw = make_framework()
    with pytest.raises(ScriptError, match="not connected|failed"):
        run_script(fw, "instantiate Driver d\ngo d\n")


# --------------------------------------------------------------------- SCMD
def test_scmd_identical_frameworks_per_rank():
    results = run_scmd(3, "instantiate RankReporter r\ngo r\n",
                       classes=[RankReporter], machine=ZERO_COST)
    assert results == [(0, 3, 6), (1, 3, 6), (2, 3, 6)]


def test_scmd_with_callable_setup():
    def setup(framework):
        framework.instantiate("Echo", "e")
        framework.set_parameter("e", "payload", "abc")
        return framework.services_of("e").get_parameter("payload")

    results = run_scmd(2, setup, classes=[Echo], machine=ZERO_COST)
    assert results == ["abc", "abc"]


def test_scmd_script_runs_same_everywhere():
    results = run_scmd(2, SCRIPT, classes=[Echo, Driver],
                       machine=ZERO_COST)
    assert results == [42, 42]


def test_scmd_clocks_returned():
    results = run_scmd(1, SCRIPT, classes=[Echo, Driver],
                       machine=ZERO_COST, return_clocks=True)
    (value, clock), = results
    assert value == 42
    assert clock >= 0.0


def test_parse_script_tolerant_every_verb_error_shape():
    from repro.cca.script import parse_script_tolerant

    text = ("repository get Foo\n"          # repository wants get-global
            "instantiate OnlyClass\n"       # missing instance name
            "create A b c\n"                # create: too many args
            "connect u port p\n"            # connect wants 4 args
            "parameter inst key\n"          # parameter wants a value
            "go a b c\n"                    # go takes at most 2 args
            "teleport x\n")                 # unknown directive
    directives, errors = parse_script_tolerant(text)
    assert directives == []
    assert [line_no for line_no, _msg in errors] == [1, 2, 3, 4, 5, 6, 7]
    messages = "\n".join(msg for _line_no, msg in errors)
    assert "get-global" in messages
    assert "unknown directive 'teleport'" in messages


def test_parse_script_tolerant_keeps_going_between_errors():
    from repro.cca.script import parse_script_tolerant

    text = ("! ccaffeine banner line\n"
            "instantiate Echo e   # trailing comment\n"
            "bogus\n"
            "\n"
            "parameter e payload 42\n"
            "nope again\n"
            "go e\n")
    directives, errors = parse_script_tolerant(text)
    assert [(d.verb, d.line_no) for d in directives] == [
        ("instantiate", 2), ("parameter", 5), ("go", 7)]
    assert [line_no for line_no, _msg in errors] == [3, 6]
    # every accumulated message is independently actionable
    assert all(f"line {n}" in msg for n, msg in errors)


def test_parse_script_tolerant_normalizes_create_to_instantiate():
    from repro.cca.script import parse_script_tolerant

    directives, errors = parse_script_tolerant("create Echo e\n")
    assert errors == []
    (d,) = directives
    assert d.verb == "instantiate" and d.args == ("Echo", "e")
