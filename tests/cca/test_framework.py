"""Tests for the CCA core: component lifecycle, provides/uses wiring,
type checking, parameters, GoPort execution."""

import pytest

from repro.cca import (
    BuilderService,
    Component,
    ComponentRegistry,
    Framework,
    Port,
)
from repro.cca.ports import GoPort, ParameterPort
from repro.errors import CCAError, PortNotConnectedError, PortTypeError


# --------------------------------------------------------- test fixtures
class GreetPort(Port):
    def greet(self) -> str:
        raise NotImplementedError


class _GreetImpl(GreetPort):
    def __init__(self, word):
        self.word = word

    def greet(self):
        return self.word


class Greeter(Component):
    """Provides a GreetPort."""

    def set_services(self, services):
        self.services = services
        services.add_provides_port(_GreetImpl("hello"), "greeting")


class _RunnerGo(GoPort):
    def __init__(self, services):
        self.services = services

    def go(self):
        port = self.services.get_port("words")
        return port.greet()


class Runner(Component):
    """Uses a GreetPort, provides a GoPort."""

    def set_services(self, services):
        self.services = services
        services.register_uses_port("words", "GreetPort")
        services.add_provides_port(_RunnerGo(services), "go")


def assembled():
    fw = Framework()
    fw.registry.register_many([Greeter, Runner])
    fw.instantiate("Greeter", "g")
    fw.instantiate("Runner", "r")
    return fw


# --------------------------------------------------------------- registry
def test_registry_rejects_non_component():
    reg = ComponentRegistry()
    with pytest.raises(CCAError):
        reg.register(int)


def test_registry_name_collision():
    reg = ComponentRegistry()
    reg.register(Greeter)
    reg.register(Greeter)  # same class twice: fine

    class Greeter2(Component):
        def set_services(self, services):
            pass

    with pytest.raises(CCAError):
        reg.register(Greeter2, name="Greeter")


def test_registry_unknown_class():
    with pytest.raises(CCAError, match="unknown component class"):
        ComponentRegistry().get("Nope")


# --------------------------------------------------------------- lifecycle
def test_instantiate_calls_set_services():
    fw = assembled()
    g = fw.get_component("g")
    assert isinstance(g, Greeter)
    assert g.services.instance_name == "g"


def test_duplicate_instance_name():
    fw = assembled()
    with pytest.raises(CCAError):
        fw.instantiate("Greeter", "g")


def test_unknown_instance():
    fw = assembled()
    with pytest.raises(CCAError, match="no component instance"):
        fw.get_component("zzz")


def test_destroy_drops_connections():
    fw = assembled()
    fw.connect("r", "words", "g", "greeting")
    fw.destroy("g")
    assert "g" not in fw.instance_names()
    assert fw.connections() == {}
    with pytest.raises(PortNotConnectedError):
        fw.get_component("r").services.get_port("words")


# ------------------------------------------------------------------ wiring
def test_connect_and_call_through_port():
    fw = assembled()
    fw.connect("r", "words", "g", "greeting")
    assert fw.go("r") == "hello"


def test_port_type_comes_from_abstract_ancestor():
    assert _GreetImpl("x").port_type() == "GreetPort"
    assert GreetPort.port_type() == "GreetPort"


def test_connect_type_mismatch():
    class WrongPort(Port):
        pass

    class Wrong(Component):
        def set_services(self, services):
            services.add_provides_port(type("W", (WrongPort,), {})(), "p")

    fw = assembled()
    fw.registry.register(Wrong)
    fw.instantiate("Wrong", "w")
    with pytest.raises(PortTypeError, match="type mismatch"):
        fw.connect("r", "words", "w", "p")


def test_connect_unknown_ports():
    fw = assembled()
    with pytest.raises(CCAError, match="no uses port"):
        fw.connect("r", "nope", "g", "greeting")
    with pytest.raises(CCAError, match="no provides port"):
        fw.connect("r", "words", "g", "nope")


def test_double_connect_rejected():
    fw = assembled()
    fw.connect("r", "words", "g", "greeting")
    with pytest.raises(CCAError, match="already connected"):
        fw.connect("r", "words", "g", "greeting")


def test_disconnect_then_port_unavailable():
    fw = assembled()
    fw.connect("r", "words", "g", "greeting")
    fw.disconnect("r", "words")
    with pytest.raises(PortNotConnectedError):
        fw.services_of("r").get_port("words")
    with pytest.raises(CCAError):
        fw.disconnect("r", "words")


def test_get_port_unregistered_name():
    fw = assembled()
    with pytest.raises(CCAError, match="never registered"):
        fw.services_of("r").get_port("bogus")


def test_release_port():
    fw = assembled()
    fw.connect("r", "words", "g", "greeting")
    fw.services_of("r").release_port("words")
    with pytest.raises(CCAError):
        fw.services_of("r").release_port("bogus")


def test_port_checkout_balance_tracking():
    fw = assembled()
    fw.connect("r", "words", "g", "greeting")
    srv = fw.services_of("r")
    assert srv.port_balances() == {}
    srv.get_port("words")
    srv.get_port("words")
    assert srv.port_balances() == {"words": 2}
    srv.release_port("words")
    assert srv.port_balances() == {"words": 1}
    srv.release_port("words")
    assert srv.port_balances() == {}
    # over-release clamps at zero instead of going negative
    srv.release_port("words")
    assert srv.port_balances() == {}


def test_leaked_ports_report():
    from repro.cca import leaked_ports

    fw = assembled()
    fw.connect("r", "words", "g", "greeting")
    assert leaked_ports(fw) == {}
    fw.go("r")  # _RunnerGo fetches "words" and never releases
    assert leaked_ports(fw) == {"r": {"words": 1}}


def test_destroy_warns_on_unreleased_ports(caplog):
    import logging

    fw = assembled()
    fw.connect("r", "words", "g", "greeting")
    fw.go("r")
    with caplog.at_level(logging.WARNING, logger="repro.cca.framework"):
        fw.destroy("r")
    assert any("unreleased ports" in rec.message and "words" in rec.message
               for rec in caplog.records)


def test_destroy_after_release_does_not_warn(caplog):
    import logging

    fw = assembled()
    fw.connect("r", "words", "g", "greeting")
    fw.go("r")
    fw.services_of("r").release_port("words")
    with caplog.at_level(logging.WARNING, logger="repro.cca.framework"):
        fw.destroy("r")
    assert not [rec for rec in caplog.records
                if "unreleased ports" in rec.message]


def test_services_introspection_tables():
    fw = assembled()
    srv = fw.services_of("r")
    assert srv.uses_table() == {"words": "GreetPort"}
    assert srv.provides_table() == {"go": "GoPort"}
    # snapshots, not live views
    srv.uses_table()["words"] = "Mutated"
    assert srv.uses["words"] == "GreetPort"


def test_provides_must_be_port():
    class Bad(Component):
        def set_services(self, services):
            services.add_provides_port(object(), "p")  # not a Port

    fw = Framework()
    fw.registry.register(Bad)
    with pytest.raises(PortTypeError):
        fw.instantiate("Bad", "b")


def test_duplicate_provides_and_uses_registration():
    class Dup(Component):
        def set_services(self, services):
            services.add_provides_port(_GreetImpl("x"), "p")
            services.add_provides_port(_GreetImpl("y"), "p")

    fw = Framework()
    fw.registry.register(Dup)
    with pytest.raises(CCAError, match="already registered"):
        fw.instantiate("Dup", "d")


# -------------------------------------------------------------- parameters
def test_parameters_flow_to_component():
    fw = assembled()
    fw.set_parameter("g", "volume", 11)
    assert fw.services_of("g").get_parameter("volume") == 11
    assert fw.services_of("g").get_parameter("missing", 5) == 5


# ------------------------------------------------------------------- go
def test_go_requires_goport():
    fw = assembled()
    with pytest.raises(CCAError, match="provides no"):
        fw.go("g")  # Greeter has no go port
    with pytest.raises(PortTypeError, match="no go"):
        fw.go("g", "greeting")  # wrong port type


def test_describe_lists_assembly():
    fw = assembled()
    fw.connect("r", "words", "g", "greeting")
    text = fw.describe()
    assert "r.words -> g.greeting" in text
    assert "greeting[GreetPort]" in text


# ------------------------------------------------------------------ builder
def test_builder_fluent_assembly():
    fw = Framework()
    result = (
        BuilderService(fw)
        .create(Greeter, "g")
        .create(Runner, "r")
        .connect("r", "words", "g", "greeting")
        .parameter("g", "volume", 3)
        .go("r")
    )
    assert result == "hello"


def test_comm_lending():
    fw = Framework(comm="fake-comm")
    fw.registry.register(Greeter)
    fw.instantiate("Greeter", "g")
    assert fw.services_of("g").get_comm() == "fake-comm"
