"""Tests for assembly-graph export (the Fig 1/2/5 'arena' pictures)."""

import pytest

from repro.cca import Framework
from repro.cca.graph import assembly_graph, to_dot, wiring_summary
from tests.cca.test_framework import Greeter, Runner


def assembled():
    fw = Framework()
    fw.registry.register_many([Greeter, Runner])
    fw.instantiate("Greeter", "g")
    fw.instantiate("Runner", "r")
    fw.connect("r", "words", "g", "greeting")
    return fw


def test_graph_nodes_and_edges():
    g = assembly_graph(assembled())
    assert set(g.nodes) == {"g", "r"}
    assert g.number_of_edges() == 1
    (user, provider, data), = g.edges(data=True)
    assert (user, provider) == ("r", "g")
    assert data["uses_port"] == "words"
    assert data["provides_port"] == "greeting"


def test_graph_node_attributes():
    g = assembly_graph(assembled())
    assert g.nodes["g"]["provides"] == {"greeting": "GreetPort"}
    assert g.nodes["r"]["uses"] == {"words": "GreetPort"}


def test_dot_output_renders_edges():
    dot = to_dot(assembled(), title="demo")
    assert dot.startswith('digraph "demo"')
    assert '"r" -> "g"' in dot
    assert "words" in dot and "greeting" in dot
    assert dot.rstrip().endswith("}")


def test_wiring_summary_counts():
    fw = assembled()
    s = wiring_summary(fw)
    assert s == {"components": 2, "connections": 1, "dangling_uses": 0}
    fw.disconnect("r", "words")
    s2 = wiring_summary(fw)
    assert s2["dangling_uses"] == 1


def test_full_application_graphs():
    from repro.apps.ignition0d import build_ignition0d
    from repro.apps.shock_interface import build_shock_interface

    fw = Framework()
    build_ignition0d(fw)
    s = wiring_summary(fw)
    assert s["components"] == 7
    assert s["connections"] == 10
    assert s["dangling_uses"] == 0  # every declared uses port is wired

    fw2 = Framework()
    build_shock_interface(fw2)
    s2 = wiring_summary(fw2)
    assert s2["components"] == 14
    dot = to_dot(fw2)
    assert '"InviscidFlux" -> "GodunovFlux"' in dot
