"""Tests for the standard port definitions: abstractness, type naming,
and the port-type inheritance rule."""

import inspect

import pytest

from repro.cca import Port
from repro.cca.ports import (
    BoundaryConditionPort,
    CharacteristicsPort,
    ChemistryPort,
    DataObjectPort,
    DPDtPort,
    FluxPort,
    GoPort,
    InitialConditionPort,
    IntegratorPort,
    MeshPort,
    ODESolverPort,
    ParameterPort,
    PatchRHSPort,
    ProlongRestrictPort,
    RegridPort,
    SpectralBoundPort,
    StatesPort,
    StatisticsPort,
    TransportPort,
    VectorICPort,
    VectorRHSPort,
)

ALL_PORTS = [
    BoundaryConditionPort, CharacteristicsPort, ChemistryPort,
    DataObjectPort, DPDtPort, FluxPort, GoPort, InitialConditionPort,
    IntegratorPort, MeshPort, ODESolverPort, ParameterPort, PatchRHSPort,
    ProlongRestrictPort, RegridPort, SpectralBoundPort, StatesPort,
    StatisticsPort, TransportPort, VectorICPort, VectorRHSPort,
]


@pytest.mark.parametrize("port_cls", ALL_PORTS,
                         ids=[c.__name__ for c in ALL_PORTS])
def test_port_type_is_own_name(port_cls):
    """Each standard port is directly below Port, so its type string is
    its own class name."""
    assert issubclass(port_cls, Port)
    assert port_cls.port_type() == port_cls.__name__


@pytest.mark.parametrize("port_cls", ALL_PORTS,
                         ids=[c.__name__ for c in ALL_PORTS])
def test_abstract_methods_raise(port_cls):
    """Every declared method on a bare port raises NotImplementedError —
    they are data-less abstract classes (paper §2)."""
    instance = port_cls()
    for name, member in inspect.getmembers(port_cls,
                                           predicate=inspect.isfunction):
        if name.startswith("_") or name == "port_type":
            continue
        sig = inspect.signature(member)
        nargs = len(sig.parameters) - 1  # drop self
        args = [None] * nargs
        with pytest.raises(NotImplementedError):
            getattr(instance, name)(*args)


def test_subclass_of_standard_port_keeps_type():
    """Refinements connect wherever the standard port is expected."""

    class FancyFlux(FluxPort):
        def flux(self, prim_l, prim_r, gamma):
            return None

    class EvenFancier(FancyFlux):
        pass

    assert FancyFlux.port_type() == "FluxPort"
    assert EvenFancier.port_type() == "FluxPort"


def test_docstrings_present():
    """Public API documentation: every standard port carries a
    docstring."""
    for cls in ALL_PORTS:
        assert cls.__doc__ and cls.__doc__.strip()
