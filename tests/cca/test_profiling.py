"""Tests for the TAU-style instrumentation layer (future-work item 4)."""

import pytest

from repro.cca import BuilderService, Framework
from repro.cca.profiling import Profiler, instrument
from tests.cca.test_framework import Greeter, Runner


def assembled():
    fw = Framework()
    (BuilderService(fw)
     .create(Greeter, "g")
     .create(Runner, "r")
     .connect("r", "words", "g", "greeting"))
    return fw


def test_instrumented_assembly_still_works():
    fw = assembled()
    instrument(fw)
    assert fw.go("r") == "hello"


def test_call_counts_attributed_to_provider():
    fw = assembled()
    prof = instrument(fw)
    fw.go("r")
    fw.go("r")
    assert prof.stats["g:greeting.greet"].calls == 2
    assert prof.stats["r:go.go"].calls == 2


def test_cpu_time_recorded_and_self_time_nests():
    fw = assembled()
    prof = instrument(fw)
    fw.go("r")
    outer = prof.stats["r:go.go"]
    inner = prof.stats["g:greeting.greet"]
    assert inner.cpu_seconds >= 0.0
    # self-time accounting: outer excludes inner, so no double counting
    total = sum(s.cpu_seconds for s in prof.stats.values())
    assert total >= 0.0


def test_by_component_aggregation_and_report():
    fw = assembled()
    prof = instrument(fw)
    fw.go("r")
    agg = prof.by_component()
    assert set(agg) == {"g:greeting", "r:go"} or set(
        c.split(":")[0] for c in agg) == {"g", "r"}
    report = prof.report()
    assert "g:greeting.greet" in report
    assert "calls" in report


def test_instrument_covers_existing_connections():
    """Ports handed out before instrumentation must be re-wired so calls
    through them are recorded."""
    fw = assembled()
    # resolve the port BEFORE instrumenting (cached in services wiring)
    services = fw.services_of("r")
    _ = services.get_port("words")
    prof = instrument(fw)
    port = services.get_port("words")
    assert port.greet() == "hello"
    assert prof.stats["g:greeting.greet"].calls == 1


def test_attribute_passthrough_and_mutation():
    fw = assembled()
    instrument(fw)
    port = fw.services_of("r").get_port("words")
    assert port.word == "hello"   # non-callable attribute passes through
    port.word = "hi"
    assert port.greet() == "hi"


def test_profile_full_application_assembly():
    """Instrument the real 0D ignition assembly and check the chemistry
    port dominates the profile (it is called per RHS evaluation)."""
    from repro.apps.ignition0d import build_ignition0d

    fw = Framework()
    build_ignition0d(fw, t_end=2e-5, T0=1400.0)
    prof = instrument(fw)
    fw.go("Driver")
    key_calls = {k: s.calls for k, s in prof.stats.items()}
    assert key_calls.get("problemModeler:model.rhs", 0) > 10
    assert key_calls.get("dPdt:dpdt.dpdt", 0) > 10
    report = prof.report(top=5)
    assert "per component" in report
