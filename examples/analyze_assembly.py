#!/usr/bin/env python3
"""Pre-flight static analysis of a component assembly.

CCAFFEINE refuses bad compositions before the simulation runs; this
example shows our analog catching wiring mistakes *without* executing
``go``.  The good script (the shipped 0D ignition assembly) passes; the
broken variant — a dropped connect, a type mismatch, and wiring after
``go`` — produces line-numbered RAxxx findings.

Run:  python examples/analyze_assembly.py
"""

from repro.analysis import Report, Severity, wiring
from repro.apps import IGNITION0D_SCRIPT

BROKEN_SCRIPT = """\
instantiate Initializer Initializer
instantiate ThermoChemistry ThermoChemistry
instantiate CvodeComponent CvodeComponent
instantiate Ignition0DDriver Driver
instantiate StatisticsComponent Statistics

connect Driver ic Initializer ic
connect Driver solver ThermoChemistry chemistry   # wrong provider: type mismatch
connect Driver stats Statistics stats
go Driver
connect Driver chem ThermoChemistry chemistry     # wired after go: never took effect
"""


def main() -> None:
    print("shipped assembly (IGNITION0D_SCRIPT):")
    good = Report(wiring.analyze_script(IGNITION0D_SCRIPT,
                                        path="<IGNITION0D_SCRIPT>"))
    print(good.format_text(Severity.WARNING))
    print()
    print("broken variant:")
    bad = Report(wiring.analyze_script(BROKEN_SCRIPT, path="<broken>"))
    print(bad.format_text(Severity.WARNING))
    print()
    print(f"gate: good exit={good.exit_code()}, bad exit={bad.exit_code()}")


if __name__ == "__main__":
    main()
