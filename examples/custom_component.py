#!/usr/bin/env python3
"""Writing your own component.

The paper's thesis is that "components implementing an agreed-to, well
defined interface can be developed in complete isolation".  This example
develops a new initial-condition component — a single off-center ignition
kernel instead of the stock three hot spots — and drops it into the
unchanged reaction-diffusion assembly.  Only one `connect` line differs.

Run:  python examples/custom_component.py
"""

import numpy as np

from repro.apps.reaction_diffusion import RD_COMPONENTS, build_reaction_diffusion
from repro.cca import Component, Framework
from repro.cca.ports import InitialConditionPort
from repro.chemistry.h2_air import stoichiometric_h2_air


class _KernelIC(InitialConditionPort):
    def __init__(self, owner):
        self.owner = owner

    def initialize(self, dobj):
        chem = self.owner.services.get_port("chem")
        mech = chem.mechanism()
        p = self.owner.services.parameters
        cx = p.get_float("x", 0.0025)
        cy = p.get_float("y", 0.0025)
        radius = p.get_float("radius", 0.0008)
        Y = np.zeros(mech.n_species)
        for nm, val in stoichiometric_h2_air().items():
            Y[mech.species_index(nm)] = val
        h = dobj.hierarchy
        for patch in dobj.owned_patches():
            lvl = h.level(patch.level)
            x, y = lvl.cell_centers(patch, h.origin, ghost=True)
            X, Yc = np.meshgrid(x, y, indexing="ij")
            r2 = (X - cx) ** 2 + (Yc - cy) ** 2
            arr = dobj.array(patch)
            arr[0] = 300.0 + 1200.0 * np.exp(-r2 / radius**2)
            arr[1:] = Y.reshape(-1, 1, 1)


class SingleKernelIC(Component):
    """A user-written Initial Condition component."""

    def set_services(self, services):
        self.services = services
        services.register_uses_port("chem", "ChemistryPort")
        services.add_provides_port(_KernelIC(self), "ic")


def main() -> None:
    framework = Framework()
    build_reaction_diffusion(framework, nx=24, ny=24, max_levels=2,
                             n_steps=4, dt=2e-7, regrid_interval=2,
                             chemistry_mode="batch", initial_regrids=1)
    # swap the stock IC for ours: disconnect one line, connect another
    framework.registry.register(SingleKernelIC)
    framework.instantiate("SingleKernelIC", "KernelIC")
    framework.connect("KernelIC", "chem", "ReactionTerms", "chemistry")
    framework.disconnect("Driver", "ic")
    framework.connect("Driver", "ic", "KernelIC", "ic")

    result = framework.go("Driver")
    print("ran the unchanged assembly with a user-written IC component:")
    print(f"  levels      = {result['nlevels']}")
    print(f"  total cells = {result['total_cells']}")
    print(f"  T_max       = {result['T_max']:.1f} K")
    # the refined region sits around the single kernel now
    mesh = framework.services_of("Driver").get_port("mesh")
    for lvl in mesh.hierarchy().levels:
        print(f"  level {lvl.number}: {len(lvl.patches)} patches, "
              f"{lvl.ncells} cells")


if __name__ == "__main__":
    main()
