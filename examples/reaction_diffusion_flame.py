#!/usr/bin/env python3
"""The 2D reaction-diffusion flame with SAMR (paper §4.2, scaled down).

Three hot spots in a stoichiometric H2-air mixture on a 10 mm square
domain; Strang-split chemistry (per-cell CVode or vectorized batch mode)
plus RKC diffusion, with the adaptive hierarchy tracking the fronts.

Run:  python examples/reaction_diffusion_flame.py [--fine]
"""

import sys

from repro.apps import run_reaction_diffusion
from repro.apps.assemblies import format_assembly_table


def main() -> None:
    fine = "--fine" in sys.argv
    print(format_assembly_table("reaction_diffusion"))
    print()
    result = run_reaction_diffusion(
        nx=48 if fine else 24,
        ny=48 if fine else 24,
        extent=0.01,                 # 10 mm
        max_levels=2,
        n_steps=10 if fine else 5,
        dt=2e-7,                     # explicit macro step
        regrid_interval=3,
        chemistry_mode="batch",      # use "cvode" for per-cell stiff solves
        initial_regrids=1,
        threshold=0.15,
    )
    print(f"steps           : {result['n_steps']}")
    print(f"simulated time  : {result['t_final'] * 1e6:.2f} us")
    print(f"levels          : {result['nlevels']}")
    print(f"total cells     : {result['total_cells']}")
    print(f"peak temperature: {result['T_max']:.1f} K")
    print()
    print("T_max history:")
    for t, T in result["history_T_max"]:
        print(f"  {t * 1e6:7.3f} us   {T:8.2f} K")


if __name__ == "__main__":
    main()
