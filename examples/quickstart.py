#!/usr/bin/env python3
"""Quickstart: assemble and run the 0D H2-air ignition code.

This is the paper's §4.1 application: a rigid adiabatic vessel of
stoichiometric H2-air at 1000 K / 1 atm, integrated to 1 ms by the
CVode-style stiff solver.  The assembly is defined by a CCAFFEINE-style
rc script — the same text a Ccaffeine user would feed the framework.

Run:  python examples/quickstart.py
"""

from repro.apps import IGNITION0D_SCRIPT
from repro.apps.assemblies import format_assembly_table
from repro.apps.ignition0d import IGNITION0D_COMPONENTS
from repro.cca import Framework, run_script


def main() -> None:
    print(format_assembly_table("ignition0d"))
    print()

    # every rank of a CCAFFEINE job executes the same script; here we run
    # one (serial) framework instance
    framework = Framework()
    framework.registry.register_many(IGNITION0D_COMPONENTS)
    (result,) = run_script(framework, IGNITION0D_SCRIPT)

    print("assembly wiring:")
    print(framework.describe())
    print()
    print(f"T0      = {result['T0']:8.1f} K")
    print(f"P0      = {result['P0'] / 101325:8.3f} atm")
    print(f"T(1ms)  = {result['T_final']:8.1f} K")
    print(f"P(1ms)  = {result['P_final'] / 101325:8.3f} atm")
    print(f"Y_H2O   = {result['Y_H2O_final']:8.4f}")
    print(f"RHS evaluations: {result['nfe']}")
    print()
    print("ignition history (T vs t):")
    for t, T in result["history_T"]:
        bar = "#" * int((T - 900) / 2000 * 60)
        print(f"  {t * 1e3:6.3f} ms  {T:7.1f} K  {bar}")


if __name__ == "__main__":
    main()
