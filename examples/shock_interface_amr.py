#!/usr/bin/env python3
"""The shock / density-interface interaction (paper §4.3, scaled down).

A Mach-1.5 shock ruptures a 30-degree interface to a 3x-denser gas; the
run is repeated with the GodunovFlux component replaced by EFMFlux — the
paper's headline demonstration that components swap without recompiling.

Run:  python examples/shock_interface_amr.py
"""

from repro.apps import run_shock_interface
from repro.apps.assemblies import format_assembly_table


def run(flux_scheme: str) -> dict:
    return run_shock_interface(
        nx=64,
        ny=32,
        max_levels=2,
        flux_scheme=flux_scheme,
        t_end_over_tau=1.0,
        regrid_interval=3,
        initial_regrids=1,
    )


def main() -> None:
    print(format_assembly_table("shock_interface"))
    print()
    for scheme in ("godunov", "efm"):
        result = run(scheme)
        print(f"[{scheme:8s}] steps={result['steps']:4d}  "
              f"levels={result['nlevels']}  cells={result['total_cells']:6d}  "
              f"Gamma_min={result['circulation_min']:+.4f}")
    print()
    print("circulation deposition history (godunov):")
    result = run("godunov")
    for t_over_tau, circ in result["circulation"][:: max(1, len(result['circulation']) // 15)]:
        bar = "#" * int(min(abs(circ) * 300, 60))
        print(f"  t/tau={t_over_tau:6.3f}   Gamma={circ:+.4f}  {bar}")


if __name__ == "__main__":
    main()
