#!/usr/bin/env python3
"""SCMD parallel execution with virtual-time accounting.

Runs the reaction-diffusion assembly on 1, 2 and 4 rank-threads under the
CPlant machine model: identical frameworks per rank (the CCAFFEINE
multiplexer), mesh strips per rank, genuine ghost-exchange message
traffic, and per-rank virtual clocks combining measured CPU time with
modeled communication cost.

Run:  python examples/parallel_scmd.py
"""

from repro.apps import run_reaction_diffusion
from repro.mpi import CPLANT, mpirun


def main() -> None:
    n_local = 32  # per-rank mesh is n_local x n_local

    for nprocs in (1, 2, 4):
        def rank_main(comm):
            run_reaction_diffusion(
                comm=comm,
                nx=nprocs * n_local,   # strip decomposition along x
                ny=n_local,
                extent=nprocs * n_local * 1e-4,
                max_levels=1,
                n_steps=5,
                dt=1e-7,
                chemistry_mode="batch",
            )
            comm.barrier()
            return comm.clock

        clocks = mpirun(nprocs, rank_main, machine=CPLANT)
        print(f"P={nprocs}: global mesh {nprocs * n_local}x{n_local}, "
              f"per-rank {n_local}x{n_local}, "
              f"virtual run time {max(clocks):.3f} s "
              f"(weak scaling: should stay ~flat)")


if __name__ == "__main__":
    main()
